//! Central-difference gradient checks for every tape op.
//!
//! Each test builds a small scalar-valued computation twice: once through
//! the tape's backward pass and once with numerical differentiation, and
//! demands agreement. This is the soundness anchor for the whole
//! training stack.

use nanograd::{Tape, Tensor, Var};

const EPS: f32 = 1e-3;
const TOL: f32 = 2e-2;

/// Sums all elements of `v` into a scalar by multiplying with ones.
fn sum_all(tape: &mut Tape, v: Var) -> Var {
    let t = tape.value(v).clone();
    let (m, n) = (t.shape[0], t.shape.get(1).copied().unwrap_or(1));
    // Weighted sum with distinct weights so gradients are not uniform.
    let w: Vec<f32> = (0..m * n).map(|i| 0.5 + (i as f32) * 0.25).collect();
    let wv = tape.leaf(Tensor::from_vec(w, vec![m, n]));
    let prod = tape.mul(v, wv);
    // Collapse with matmuls against ones.
    let ones_n = tape.leaf(Tensor::from_vec(vec![1.0; n], vec![n, 1]));
    let col = tape.matmul(prod, ones_n); // [m,1]
    let ones_m = tape.leaf(Tensor::from_vec(vec![1.0; m], vec![1, m]));
    tape.matmul(ones_m, col) // [1,1]
}

/// Checks analytic vs numerical gradients of `f` at `x0`.
fn gradcheck(x0: Tensor, f: impl Fn(&mut Tape, Var) -> Var) {
    // Analytic.
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let y = f(&mut tape, x);
    let out = sum_all(&mut tape, y);
    assert_eq!(tape.value(out).len(), 1, "gradcheck target must be scalar");
    tape.backward(out);
    let analytic = tape.grad(x);

    // Numerical (central differences).
    let eval = |t: &Tensor| -> f32 {
        let mut tape = Tape::new();
        let x = tape.leaf(t.clone());
        let y = f(&mut tape, x);
        let out = sum_all(&mut tape, y);
        tape.value(out).data[0]
    };
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data[i] += EPS;
        let mut minus = x0.clone();
        minus.data[i] -= EPS;
        let num = (eval(&plus) - eval(&minus)) / (2.0 * EPS);
        let ana = analytic.data[i];
        let denom = num.abs().max(ana.abs()).max(1.0);
        assert!(
            (num - ana).abs() / denom < TOL,
            "element {i}: numerical {num} vs analytic {ana}"
        );
    }
}

fn input(seed: u64, shape: Vec<usize>) -> Tensor {
    Tensor::randn(shape, 0.7, seed)
}

#[test]
fn matmul_grad_lhs() {
    gradcheck(input(1, vec![3, 4]), |tape, x| {
        let w = tape.leaf(Tensor::randn(vec![4, 2], 0.6, 11));
        tape.matmul(x, w)
    });
}

#[test]
fn matmul_grad_rhs() {
    gradcheck(input(2, vec![4, 2]), |tape, x| {
        let a = tape.leaf(Tensor::randn(vec![3, 4], 0.6, 12));
        tape.matmul(a, x)
    });
}

#[test]
fn add_and_mul_grads() {
    gradcheck(input(3, vec![2, 3]), |tape, x| {
        let b = tape.leaf(Tensor::randn(vec![2, 3], 0.5, 13));
        let s = tape.add(x, b);
        tape.mul(s, x)
    });
}

#[test]
fn add_row_grad() {
    gradcheck(input(4, vec![3]), |tape, x| {
        let a = tape.leaf(Tensor::randn(vec![4, 3], 0.5, 14));
        tape.add_row(a, x)
    });
}

#[test]
fn scale_grad() {
    gradcheck(input(5, vec![2, 2]), |tape, x| tape.scale(x, -1.7));
}

#[test]
fn silu_grad() {
    gradcheck(input(6, vec![3, 3]), |tape, x| tape.silu(x));
}

#[test]
fn rmsnorm_grad_input() {
    gradcheck(input(7, vec![3, 4]), |tape, x| {
        let w = tape.leaf(Tensor::randn(vec![4], 0.5, 15));
        tape.rmsnorm(x, w, 1e-5)
    });
}

#[test]
fn rmsnorm_grad_weight() {
    gradcheck(input(8, vec![4]), |tape, x| {
        let a = tape.leaf(Tensor::randn(vec![3, 4], 0.8, 16));
        tape.rmsnorm(a, x, 1e-5)
    });
}

#[test]
fn softmax_grad() {
    gradcheck(input(9, vec![3, 5]), |tape, x| tape.softmax(x));
}

#[test]
fn rope_grad() {
    gradcheck(input(10, vec![3, 8]), |tape, x| {
        tape.rope(x, &[0, 2, 5], 4, 10_000.0)
    });
}

#[test]
fn embedding_grad() {
    gradcheck(input(11, vec![5, 3]), |tape, x| {
        tape.embedding(x, &[0, 2, 2, 4])
    });
}

#[test]
fn slice_and_concat_grads() {
    gradcheck(input(12, vec![3, 6]), |tape, x| {
        let a = tape.slice_cols(x, 0, 2);
        let b = tape.slice_cols(x, 2, 4);
        tape.concat_cols(&[b, a])
    });
}

#[test]
fn transpose_grad() {
    gradcheck(input(13, vec![2, 5]), |tape, x| tape.transpose(x));
}

#[test]
fn cross_entropy_grad() {
    let x0 = input(14, vec![4, 6]);
    // Analytic.
    let targets = [1usize, 0, 5, 3];
    let mut tape = Tape::new();
    let x = tape.leaf(x0.clone());
    let loss = tape.cross_entropy(x, &targets);
    tape.backward(loss);
    let analytic = tape.grad(x);
    // Numerical.
    let eval = |t: &Tensor| -> f32 {
        let mut tape = Tape::new();
        let x = tape.leaf(t.clone());
        let loss = tape.cross_entropy(x, &targets);
        tape.value(loss).data[0]
    };
    for i in 0..x0.len() {
        let mut plus = x0.clone();
        plus.data[i] += EPS;
        let mut minus = x0.clone();
        minus.data[i] -= EPS;
        let num = (eval(&plus) - eval(&minus)) / (2.0 * EPS);
        assert!(
            (num - analytic.data[i]).abs() < TOL,
            "element {i}: numerical {num} vs analytic {}",
            analytic.data[i]
        );
    }
}

/// A two-matmul chain with shared input exercises gradient accumulation.
#[test]
fn shared_input_accumulates() {
    gradcheck(input(15, vec![3, 3]), |tape, x| {
        let a = tape.matmul(x, x);
        tape.add(a, x)
    });
}

/// An attention-shaped composite: QKᵀ softmax V with RoPE.
#[test]
fn attention_composite_grad() {
    gradcheck(input(16, vec![4, 6]), |tape, x| {
        let wq = tape.leaf(Tensor::randn(vec![6, 4], 0.5, 21));
        let wk = tape.leaf(Tensor::randn(vec![6, 4], 0.5, 22));
        let wv = tape.leaf(Tensor::randn(vec![6, 4], 0.5, 23));
        let positions = [0usize, 1, 2, 3];
        let q = tape.matmul(x, wq);
        let k = tape.matmul(x, wk);
        let v = tape.matmul(x, wv);
        let q = tape.rope(q, &positions, 4, 10_000.0);
        let k = tape.rope(k, &positions, 4, 10_000.0);
        let kt = tape.transpose(k);
        let scores = tape.matmul(q, kt);
        let scaled = tape.scale(scores, 0.5);
        let attn = tape.softmax(scaled);
        tape.matmul(attn, v)
    });
}
