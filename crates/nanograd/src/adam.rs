//! The Adam optimizer.

use crate::Tensor;

/// Adam with bias correction (Kingma & Ba, 2015).
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    step: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

/// Rescales `grads` in place so their global L2 norm is at most
/// `max_norm`; returns the pre-clip norm.
///
/// The usual stabilizer for small-batch transformer training: a single
/// outlier step cannot blow up Adam's second-moment estimates.
pub fn clip_global_norm(grads: &mut [Tensor], max_norm: f32) -> f32 {
    assert!(max_norm > 0.0, "clip norm must be positive");
    let norm = grads
        .iter()
        .flat_map(|g| g.data.iter())
        .map(|x| (*x as f64) * (*x as f64))
        .sum::<f64>()
        .sqrt() as f32;
    if norm > max_norm {
        let scale = max_norm / norm;
        for g in grads.iter_mut() {
            for x in g.data.iter_mut() {
                *x *= scale;
            }
        }
    }
    norm
}

/// Cosine learning-rate schedule with linear warmup.
#[derive(Debug, Clone, Copy)]
pub struct CosineSchedule {
    /// Peak learning rate reached after warmup.
    pub base_lr: f32,
    /// Linear warmup steps from zero.
    pub warmup: u64,
    /// Total steps; the rate decays to `base_lr / 10` here and stays.
    pub total: u64,
}

impl CosineSchedule {
    /// Learning rate at `step` (0-based).
    pub fn lr(&self, step: u64) -> f32 {
        let floor = self.base_lr / 10.0;
        if self.warmup > 0 && step < self.warmup {
            return self.base_lr * (step + 1) as f32 / self.warmup as f32;
        }
        if step >= self.total {
            return floor;
        }
        let progress = (step - self.warmup) as f32 / (self.total - self.warmup).max(1) as f32;
        floor + 0.5 * (self.base_lr - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
    }
}

impl Adam {
    /// Creates an optimizer for parameters with the given shapes.
    pub fn new(param_shapes: &[Vec<usize>], lr: f32) -> Adam {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 0,
            m: param_shapes
                .iter()
                .map(|s| Tensor::zeros(s.clone()))
                .collect(),
            v: param_shapes
                .iter()
                .map(|s| Tensor::zeros(s.clone()))
                .collect(),
        }
    }

    /// Returns the configured learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Changes the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        assert!(lr >= 0.0, "learning rate cannot be negative");
        self.lr = lr;
    }

    /// Applies one update.
    ///
    /// # Panics
    ///
    /// Panics if the parameter/gradient counts or shapes do not match the
    /// shapes the optimizer was created with.
    pub fn step(&mut self, params: &mut [Tensor], grads: &[Tensor]) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(params.len(), grads.len(), "need one gradient per parameter");
        self.step += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            assert_eq!(p.shape, g.shape, "gradient shape mismatch");
            for i in 0..p.data.len() {
                let gi = g.data[i];
                m.data[i] = self.beta1 * m.data[i] + (1.0 - self.beta1) * gi;
                v.data[i] = self.beta2 * v.data[i] + (1.0 - self.beta2) * gi * gi;
                let mhat = m.data[i] / bc1;
                let vhat = v.data[i] / bc2;
                p.data[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adam minimizes a simple quadratic.
    #[test]
    fn converges_on_quadratic() {
        let mut params = vec![Tensor::from_vec(vec![5.0, -3.0], vec![2])];
        let mut opt = Adam::new(&[vec![2]], 0.1);
        for _ in 0..500 {
            // f(x) = Σ x², grad = 2x.
            let grads = vec![Tensor::from_vec(
                params[0].data.iter().map(|x| 2.0 * x).collect(),
                vec![2],
            )];
            opt.step(&mut params, &grads);
        }
        assert!(params[0].data.iter().all(|x| x.abs() < 1e-2));
    }

    #[test]
    fn clipping_bounds_the_global_norm() {
        let mut grads = vec![
            Tensor::from_vec(vec![3.0, 4.0], vec![2]),
            Tensor::from_vec(vec![0.0, 0.0], vec![2]),
        ];
        let pre = clip_global_norm(&mut grads, 1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        let post: f32 = grads
            .iter()
            .flat_map(|g| g.data.iter())
            .map(|x| x * x)
            .sum::<f32>()
            .sqrt();
        assert!((post - 1.0).abs() < 1e-6);
        // Already-small gradients are untouched.
        let mut small = vec![Tensor::from_vec(vec![0.1], vec![1])];
        clip_global_norm(&mut small, 1.0);
        assert_eq!(small[0].data[0], 0.1);
    }

    #[test]
    fn cosine_schedule_shape() {
        let s = CosineSchedule {
            base_lr: 1.0,
            warmup: 10,
            total: 110,
        };
        // Warmup climbs linearly to the peak.
        assert!(s.lr(0) < s.lr(5));
        assert!((s.lr(9) - 1.0).abs() < 1e-6);
        // Decays monotonically after warmup down to the floor.
        assert!(s.lr(30) > s.lr(80));
        assert!((s.lr(110) - 0.1).abs() < 1e-6);
        assert!((s.lr(10_000) - 0.1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "gradient shape mismatch")]
    fn shape_mismatch_panics() {
        let mut params = vec![Tensor::zeros(vec![2])];
        let mut opt = Adam::new(&[vec![2]], 0.1);
        let grads = vec![Tensor::zeros(vec![3])];
        opt.step(&mut params, &grads);
    }
}
