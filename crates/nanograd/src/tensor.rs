//! Row-major `f32` tensors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense row-major tensor of `f32` values.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    /// Elements, row-major.
    pub data: Vec<f32>,
    /// Dimension sizes; product equals `data.len()`.
    pub shape: Vec<usize>,
}

impl Tensor {
    /// Wraps raw data with a shape.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not match the element count.
    pub fn from_vec(data: Vec<f32>, shape: Vec<usize>) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape {shape:?} does not fit {} elements",
            data.len()
        );
        Tensor { data, shape }
    }

    /// An all-zeros tensor.
    pub fn zeros(shape: Vec<usize>) -> Tensor {
        let n = shape.iter().product();
        Tensor {
            data: vec![0.0; n],
            shape,
        }
    }

    /// A tensor of standard-normal values scaled by `std`, seeded.
    pub fn randn(shape: Vec<usize>, std: f32, seed: u64) -> Tensor {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = shape.iter().product();
        // Box-Muller from uniform draws keeps us independent of
        // rand_distr here.
        let data = (0..n)
            .map(|_| {
                let u1: f32 = rng.gen_range(1e-7..1.0);
                let u2: f32 = rng.gen::<f32>();
                (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos() * std
            })
            .collect();
        Tensor { data, shape }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D tensors.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() needs a 2-D tensor");
        self.shape[0]
    }

    /// Number of columns of a 2-D tensor.
    ///
    /// # Panics
    ///
    /// Panics on non-2-D tensors.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() needs a 2-D tensor");
        self.shape[1]
    }

    /// Element at `(r, c)` of a 2-D tensor.
    pub fn at(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols() + c]
    }

    /// Mutable element at `(r, c)` of a 2-D tensor.
    pub fn at_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let cols = self.cols();
        &mut self.data[r * cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_shape() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], vec![2, 2]);
        assert_eq!(t.at(1, 0), 3.0);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn mismatched_shape_panics() {
        let _ = Tensor::from_vec(vec![1.0], vec![2, 2]);
    }

    #[test]
    fn randn_is_deterministic_and_scaled() {
        let a = Tensor::randn(vec![1000], 0.5, 9);
        let b = Tensor::randn(vec![1000], 0.5, 9);
        assert_eq!(a, b);
        let mean: f32 = a.data.iter().sum::<f32>() / 1000.0;
        let var: f32 = a.data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.06, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.06, "std {}", var.sqrt());
    }

    #[test]
    fn zeros_are_zero() {
        let z = Tensor::zeros(vec![3, 4]);
        assert_eq!(z.len(), 12);
        assert!(z.data.iter().all(|&x| x == 0.0));
    }
}
