#![warn(missing_docs)]

//! Reverse-mode automatic differentiation, from scratch.
//!
//! A tape ([`Tape`]) records a computation over row-major `f32` tensors
//! ([`Tensor`]); [`Tape::backward`] walks the tape in reverse and
//! accumulates gradients. The op set is exactly what a LLaMA-style
//! transformer language model needs: matmul, elementwise arithmetic,
//! RMSNorm, SiLU, softmax, rotary position embedding, embedding lookup,
//! column slice/concat for attention heads, and a fused
//! softmax-cross-entropy loss. [`Adam`] provides the optimizer.
//!
//! Every op's backward pass is verified against central-difference
//! numerical gradients in the test suite.
//!
//! # Examples
//!
//! ```
//! use nanograd::{Tape, Tensor};
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_vec(vec![1.0, 2.0], vec![1, 2]));
//! let w = tape.leaf(Tensor::from_vec(vec![3.0, 4.0], vec![2, 1]));
//! let y = tape.matmul(x, w); // 1*3 + 2*4 = 11
//! assert_eq!(tape.value(y).data[0], 11.0);
//! tape.backward(y);
//! // dy/dw = x.
//! assert_eq!(tape.grad(w).data, vec![1.0, 2.0]);
//! ```

mod adam;
mod tape;
mod tensor;

pub use adam::{clip_global_norm, Adam, CosineSchedule};
pub use tape::{Tape, Var, IGNORE_TARGET};
pub use tensor::Tensor;
