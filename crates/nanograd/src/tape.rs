//! The autodiff tape: forward ops and reverse-mode gradients.

use crate::Tensor;

/// Sentinel target for [`Tape::cross_entropy`]: the row is excluded from
/// the loss.
pub const IGNORE_TARGET: usize = usize::MAX;

/// Handle to a tensor on the tape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

/// Recorded operation producing one node.
enum Op {
    /// Input / parameter node.
    Leaf,
    /// `a[m,k] · b[k,n]`.
    MatMul(Var, Var),
    /// Elementwise sum of same-shape tensors.
    Add(Var, Var),
    /// `a[m,n] + b[n]` with `b` broadcast over rows.
    AddRow(Var, Var),
    /// Elementwise product of same-shape tensors.
    Mul(Var, Var),
    /// `a * c` for scalar `c`.
    Scale(Var, f32),
    /// SiLU activation `x · σ(x)`.
    Silu(Var),
    /// Row-wise RMS normalization with weight `w[n]`; caches row scales.
    RmsNorm(Var, Var, f32),
    /// Row-wise softmax.
    Softmax(Var),
    /// Rotary position embedding over heads of width `head_dim`.
    Rope {
        /// Input `[m, n_heads · head_dim]`.
        a: Var,
        /// Position of each row.
        positions: Vec<usize>,
        /// Width of one head (even).
        head_dim: usize,
        /// Rotation base (e.g. 10000.0).
        theta: f32,
    },
    /// Row gather `w[ids[t]]`.
    Embedding(Var, Vec<usize>),
    /// Column slice `a[:, start..start+len]`.
    SliceCols(Var, usize, usize),
    /// Column concatenation of same-row-count parts.
    ConcatCols(Vec<Var>),
    /// `aᵀ`.
    Transpose(Var),
    /// Mean softmax cross-entropy of `logits[m,V]` against `targets[m]`;
    /// produces a scalar.
    CrossEntropy(Var, Vec<usize>),
}

/// One tape node.
struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    op: Op,
}

/// A recorded computation.
#[derive(Default)]
pub struct Tape {
    nodes: Vec<Node>,
}

/// Applies the RoPE rotation (or its inverse) in place.
fn rope_rotate(
    data: &mut [f32],
    cols: usize,
    positions: &[usize],
    head_dim: usize,
    theta: f32,
    inverse: bool,
) {
    assert_eq!(head_dim % 2, 0, "RoPE needs an even head dimension");
    let n_heads = cols / head_dim;
    for (row, &pos) in positions.iter().enumerate() {
        for h in 0..n_heads {
            let base = row * cols + h * head_dim;
            for i in 0..head_dim / 2 {
                let freq = theta.powf(-2.0 * i as f32 / head_dim as f32);
                let mut angle = pos as f32 * freq;
                if inverse {
                    angle = -angle;
                }
                let (sin, cos) = angle.sin_cos();
                let x = data[base + 2 * i];
                let y = data[base + 2 * i + 1];
                data[base + 2 * i] = x * cos - y * sin;
                data[base + 2 * i + 1] = x * sin + y * cos;
            }
        }
    }
}

/// Row-wise softmax into a new tensor.
fn softmax_rows(a: &Tensor) -> Tensor {
    let (m, n) = (a.rows(), a.cols());
    let mut out = Tensor::zeros(vec![m, n]);
    for r in 0..m {
        let row = &a.data[r * n..(r + 1) * n];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for (c, &x) in row.iter().enumerate() {
            let e = (x - max).exp();
            out.data[r * n + c] = e;
            sum += e;
        }
        for c in 0..n {
            out.data[r * n + c] /= sum;
        }
    }
    out
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Tape {
        Tape::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.nodes.push(Node {
            value,
            grad: None,
            op,
        });
        Var(self.nodes.len() - 1)
    }

    /// Records an input/parameter tensor.
    pub fn leaf(&mut self, value: Tensor) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Returns the value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// Returns the gradient accumulated at a node (zeros if untouched).
    pub fn grad(&self, v: Var) -> Tensor {
        match &self.nodes[v.0].grad {
            Some(g) => g.clone(),
            None => Tensor::zeros(self.nodes[v.0].value.shape.clone()),
        }
    }

    /// Matrix product `a[m,k] · b[k,n]`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let (m, k, n) = (av.rows(), av.cols(), bv.cols());
        assert_eq!(
            bv.rows(),
            k,
            "matmul inner dims {}≠{}",
            av.cols(),
            bv.rows()
        );
        let mut out = Tensor::zeros(vec![m, n]);
        for r in 0..m {
            for i in 0..k {
                let x = av.data[r * k + i];
                if x == 0.0 {
                    continue;
                }
                let brow = &bv.data[i * n..(i + 1) * n];
                let orow = &mut out.data[r * n..(r + 1) * n];
                for c in 0..n {
                    orow[c] += x * brow[c];
                }
            }
        }
        self.push(out, Op::MatMul(a, b))
    }

    /// Elementwise sum (same shapes).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(av.shape, bv.shape, "add shape mismatch");
        let data = av.data.iter().zip(&bv.data).map(|(x, y)| x + y).collect();
        let shape = av.shape.clone();
        self.push(Tensor::from_vec(data, shape), Op::Add(a, b))
    }

    /// `a[m,n] + b[n]`, broadcasting `b` over rows.
    pub fn add_row(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        let n = av.cols();
        assert_eq!(bv.len(), n, "row-broadcast length mismatch");
        let mut out = av.clone();
        for r in 0..av.rows() {
            for c in 0..n {
                out.data[r * n + c] += bv.data[c];
            }
        }
        self.push(out, Op::AddRow(a, b))
    }

    /// Elementwise product (same shapes).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let (av, bv) = (&self.nodes[a.0].value, &self.nodes[b.0].value);
        assert_eq!(av.shape, bv.shape, "mul shape mismatch");
        let data = av.data.iter().zip(&bv.data).map(|(x, y)| x * y).collect();
        let shape = av.shape.clone();
        self.push(Tensor::from_vec(data, shape), Op::Mul(a, b))
    }

    /// Scalar scale.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let av = &self.nodes[a.0].value;
        let data = av.data.iter().map(|x| x * c).collect();
        let shape = av.shape.clone();
        self.push(Tensor::from_vec(data, shape), Op::Scale(a, c))
    }

    /// SiLU activation.
    pub fn silu(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let data = av.data.iter().map(|&x| x / (1.0 + (-x).exp())).collect();
        let shape = av.shape.clone();
        self.push(Tensor::from_vec(data, shape), Op::Silu(a))
    }

    /// Row-wise RMS normalization scaled by `w[n]`.
    pub fn rmsnorm(&mut self, a: Var, w: Var, eps: f32) -> Var {
        let (av, wv) = (&self.nodes[a.0].value, &self.nodes[w.0].value);
        let (m, n) = (av.rows(), av.cols());
        assert_eq!(wv.len(), n, "rmsnorm weight length mismatch");
        let mut out = Tensor::zeros(vec![m, n]);
        for r in 0..m {
            let row = &av.data[r * n..(r + 1) * n];
            let ms: f32 = row.iter().map(|x| x * x).sum::<f32>() / n as f32;
            let rms = 1.0 / (ms + eps).sqrt();
            for (c, &x) in row.iter().enumerate() {
                out.data[r * n + c] = x * rms * wv.data[c];
            }
        }
        self.push(out, Op::RmsNorm(a, w, eps))
    }

    /// Row-wise softmax.
    pub fn softmax(&mut self, a: Var) -> Var {
        let out = softmax_rows(&self.nodes[a.0].value);
        self.push(out, Op::Softmax(a))
    }

    /// Rotary position embedding of `a[m, n_heads · head_dim]` at the
    /// given per-row positions.
    pub fn rope(&mut self, a: Var, positions: &[usize], head_dim: usize, theta: f32) -> Var {
        let av = &self.nodes[a.0].value;
        assert_eq!(av.rows(), positions.len(), "one position per row");
        let mut out = av.clone();
        let cols = av.cols();
        rope_rotate(&mut out.data, cols, positions, head_dim, theta, false);
        self.push(
            out,
            Op::Rope {
                a,
                positions: positions.to_vec(),
                head_dim,
                theta,
            },
        )
    }

    /// Gathers rows of an embedding table `w[V, n]`.
    pub fn embedding(&mut self, w: Var, ids: &[usize]) -> Var {
        let wv = &self.nodes[w.0].value;
        let n = wv.cols();
        let mut out = Tensor::zeros(vec![ids.len(), n]);
        for (r, &id) in ids.iter().enumerate() {
            out.data[r * n..(r + 1) * n].copy_from_slice(&wv.data[id * n..(id + 1) * n]);
        }
        self.push(out, Op::Embedding(w, ids.to_vec()))
    }

    /// Column slice `a[:, start..start+len]`.
    pub fn slice_cols(&mut self, a: Var, start: usize, len: usize) -> Var {
        let av = &self.nodes[a.0].value;
        let (m, n) = (av.rows(), av.cols());
        assert!(start + len <= n, "slice out of bounds");
        let mut out = Tensor::zeros(vec![m, len]);
        for r in 0..m {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&av.data[r * n + start..r * n + start + len]);
        }
        self.push(out, Op::SliceCols(a, start, len))
    }

    /// Concatenates same-row-count parts along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat of nothing");
        let m = self.nodes[parts[0].0].value.rows();
        let total: usize = parts.iter().map(|p| self.nodes[p.0].value.cols()).sum();
        let mut out = Tensor::zeros(vec![m, total]);
        let mut off = 0;
        for &p in parts {
            let pv = &self.nodes[p.0].value;
            assert_eq!(pv.rows(), m, "concat row mismatch");
            let w = pv.cols();
            for r in 0..m {
                out.data[r * total + off..r * total + off + w]
                    .copy_from_slice(&pv.data[r * w..(r + 1) * w]);
            }
            off += w;
        }
        self.push(out, Op::ConcatCols(parts.to_vec()))
    }

    /// Transpose of a 2-D tensor.
    pub fn transpose(&mut self, a: Var) -> Var {
        let av = &self.nodes[a.0].value;
        let (m, n) = (av.rows(), av.cols());
        let mut out = Tensor::zeros(vec![n, m]);
        for r in 0..m {
            for c in 0..n {
                out.data[c * m + r] = av.data[r * n + c];
            }
        }
        self.push(out, Op::Transpose(a))
    }

    /// Mean softmax cross-entropy of `logits[m, V]` against `targets`.
    ///
    /// Rows whose target is [`IGNORE_TARGET`] contribute neither loss nor
    /// gradient; the mean runs over the counted rows. Useful when only
    /// some positions of a sequence carry supervision (e.g. the answer
    /// token of a retrieval episode).
    ///
    /// # Panics
    ///
    /// Panics when every target is ignored.
    pub fn cross_entropy(&mut self, logits: Var, targets: &[usize]) -> Var {
        let lv = &self.nodes[logits.0].value;
        assert_eq!(lv.rows(), targets.len(), "one target per row");
        let probs = softmax_rows(lv);
        let n = lv.cols();
        let counted = targets.iter().filter(|&&t| t != IGNORE_TARGET).count();
        assert!(counted > 0, "cross entropy with every target ignored");
        let loss = targets
            .iter()
            .enumerate()
            .filter(|&(_, &t)| t != IGNORE_TARGET)
            .map(|(r, &t)| -(probs.data[r * n + t].max(1e-12)).ln())
            .sum::<f32>()
            / counted as f32;
        self.push(
            Tensor::from_vec(vec![loss], vec![1]),
            Op::CrossEntropy(logits, targets.to_vec()),
        )
    }

    fn accumulate(&mut self, v: Var, delta: Tensor) {
        let node = &mut self.nodes[v.0];
        match &mut node.grad {
            Some(g) => {
                for (gi, di) in g.data.iter_mut().zip(&delta.data) {
                    *gi += di;
                }
            }
            None => node.grad = Some(delta),
        }
    }

    /// Runs reverse-mode differentiation from `root` (seeded with ones).
    ///
    /// Gradients accumulate into every node reachable backwards from the
    /// root; read them with [`Tape::grad`].
    pub fn backward(&mut self, root: Var) {
        let seed = Tensor::from_vec(
            vec![1.0; self.nodes[root.0].value.len()],
            self.nodes[root.0].value.shape.clone(),
        );
        self.nodes[root.0].grad = Some(seed);
        for idx in (0..=root.0).rev() {
            let Some(g) = self.nodes[idx].grad.clone() else {
                continue;
            };
            // Ops only reference earlier nodes, so reverse index order is
            // a valid reverse-topological order.
            match &self.nodes[idx].op {
                Op::Leaf => {}
                Op::MatMul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let (m, k, n) = (av.rows(), av.cols(), bv.cols());
                    // dA = dY · Bᵀ.
                    let mut da = Tensor::zeros(vec![m, k]);
                    for r in 0..m {
                        for c in 0..n {
                            let gy = g.data[r * n + c];
                            if gy == 0.0 {
                                continue;
                            }
                            for i in 0..k {
                                da.data[r * k + i] += gy * bv.data[i * n + c];
                            }
                        }
                    }
                    // dB = Aᵀ · dY.
                    let mut db = Tensor::zeros(vec![k, n]);
                    for r in 0..m {
                        for i in 0..k {
                            let x = av.data[r * k + i];
                            if x == 0.0 {
                                continue;
                            }
                            for c in 0..n {
                                db.data[i * n + c] += x * g.data[r * n + c];
                            }
                        }
                    }
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Add(a, b) => {
                    let (a, b) = (*a, *b);
                    self.accumulate(a, g.clone());
                    self.accumulate(b, g);
                }
                Op::AddRow(a, b) => {
                    let (a, b) = (*a, *b);
                    let n = self.nodes[b.0].value.len();
                    let mut db = Tensor::zeros(vec![n]);
                    for r in 0..g.rows() {
                        for c in 0..n {
                            db.data[c] += g.data[r * n + c];
                        }
                    }
                    self.accumulate(a, g);
                    self.accumulate(b, db);
                }
                Op::Mul(a, b) => {
                    let (a, b) = (*a, *b);
                    let av = self.nodes[a.0].value.clone();
                    let bv = self.nodes[b.0].value.clone();
                    let da = Tensor::from_vec(
                        g.data.iter().zip(&bv.data).map(|(g, y)| g * y).collect(),
                        av.shape.clone(),
                    );
                    let db = Tensor::from_vec(
                        g.data.iter().zip(&av.data).map(|(g, x)| g * x).collect(),
                        bv.shape.clone(),
                    );
                    self.accumulate(a, da);
                    self.accumulate(b, db);
                }
                Op::Scale(a, c) => {
                    let (a, c) = (*a, *c);
                    let da =
                        Tensor::from_vec(g.data.iter().map(|g| g * c).collect(), g.shape.clone());
                    self.accumulate(a, da);
                }
                Op::Silu(a) => {
                    let a = *a;
                    let av = self.nodes[a.0].value.clone();
                    let da = Tensor::from_vec(
                        g.data
                            .iter()
                            .zip(&av.data)
                            .map(|(g, &x)| {
                                let s = 1.0 / (1.0 + (-x).exp());
                                g * s * (1.0 + x * (1.0 - s))
                            })
                            .collect(),
                        av.shape.clone(),
                    );
                    self.accumulate(a, da);
                }
                Op::RmsNorm(a, w, eps) => {
                    let (a, w, eps) = (*a, *w, *eps);
                    let av = self.nodes[a.0].value.clone();
                    let wv = self.nodes[w.0].value.clone();
                    let (m, n) = (av.rows(), av.cols());
                    let mut da = Tensor::zeros(vec![m, n]);
                    let mut dw = Tensor::zeros(vec![n]);
                    for r in 0..m {
                        let row = &av.data[r * n..(r + 1) * n];
                        let ms: f32 = row.iter().map(|x| x * x).sum::<f32>() / n as f32;
                        let rms = 1.0 / (ms + eps).sqrt();
                        let grow = &g.data[r * n..(r + 1) * n];
                        // Σ_i g_i · w_i · x_i.
                        let dot: f32 = (0..n).map(|i| grow[i] * wv.data[i] * row[i]).sum();
                        for j in 0..n {
                            da.data[r * n + j] +=
                                rms * wv.data[j] * grow[j] - rms.powi(3) * row[j] * dot / n as f32;
                            dw.data[j] += grow[j] * row[j] * rms;
                        }
                    }
                    self.accumulate(a, da);
                    self.accumulate(w, dw);
                }
                Op::Softmax(a) => {
                    let a = *a;
                    let y = self.nodes[idx].value.clone();
                    let (m, n) = (y.rows(), y.cols());
                    let mut da = Tensor::zeros(vec![m, n]);
                    for r in 0..m {
                        let yr = &y.data[r * n..(r + 1) * n];
                        let gr = &g.data[r * n..(r + 1) * n];
                        let dot: f32 = yr.iter().zip(gr).map(|(y, g)| y * g).sum();
                        for c in 0..n {
                            da.data[r * n + c] = yr[c] * (gr[c] - dot);
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::Rope {
                    a,
                    positions,
                    head_dim,
                    theta,
                } => {
                    let (a, positions, head_dim, theta) =
                        (*a, positions.clone(), *head_dim, *theta);
                    // The rotation is orthogonal: the adjoint is the
                    // inverse rotation.
                    let mut da = g.clone();
                    let cols = da.cols();
                    rope_rotate(&mut da.data, cols, &positions, head_dim, theta, true);
                    self.accumulate(a, da);
                }
                Op::Embedding(w, ids) => {
                    let (w, ids) = (*w, ids.clone());
                    let wv_shape = self.nodes[w.0].value.shape.clone();
                    let n = wv_shape[1];
                    let mut dw = Tensor::zeros(wv_shape);
                    for (r, &id) in ids.iter().enumerate() {
                        for c in 0..n {
                            dw.data[id * n + c] += g.data[r * n + c];
                        }
                    }
                    self.accumulate(w, dw);
                }
                Op::SliceCols(a, start, len) => {
                    let (a, start, len) = (*a, *start, *len);
                    let av_shape = self.nodes[a.0].value.shape.clone();
                    let (m, n) = (av_shape[0], av_shape[1]);
                    let mut da = Tensor::zeros(vec![m, n]);
                    for r in 0..m {
                        for c in 0..len {
                            da.data[r * n + start + c] = g.data[r * len + c];
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::ConcatCols(parts) => {
                    let parts = parts.clone();
                    let total = g.cols();
                    let m = g.rows();
                    let mut off = 0;
                    for p in parts {
                        let w = self.nodes[p.0].value.cols();
                        let mut dp = Tensor::zeros(vec![m, w]);
                        for r in 0..m {
                            dp.data[r * w..(r + 1) * w]
                                .copy_from_slice(&g.data[r * total + off..r * total + off + w]);
                        }
                        self.accumulate(p, dp);
                        off += w;
                    }
                }
                Op::Transpose(a) => {
                    let a = *a;
                    let (m, n) = (g.rows(), g.cols());
                    let mut da = Tensor::zeros(vec![n, m]);
                    for r in 0..m {
                        for c in 0..n {
                            da.data[c * m + r] = g.data[r * n + c];
                        }
                    }
                    self.accumulate(a, da);
                }
                Op::CrossEntropy(logits, targets) => {
                    let (logits, targets) = (*logits, targets.clone());
                    let lv = self.nodes[logits.0].value.clone();
                    let probs = softmax_rows(&lv);
                    let n = lv.cols();
                    let counted = targets.iter().filter(|&&t| t != IGNORE_TARGET).count();
                    let gscalar = g.data[0];
                    let mut dl = probs;
                    for (r, &t) in targets.iter().enumerate() {
                        if t == IGNORE_TARGET {
                            for c in 0..n {
                                dl.data[r * n + c] = 0.0;
                            }
                        } else {
                            dl.data[r * n + t] -= 1.0;
                        }
                    }
                    for x in dl.data.iter_mut() {
                        *x *= gscalar / counted.max(1) as f32;
                    }
                    self.accumulate(logits, dl);
                }
            }
        }
    }
}
