//! Host-time self-profiler: where does the *simulator* burn CPU?
//!
//! Every other observability layer in this workspace measures **virtual**
//! time — the clock the simulated cluster lives on. This module measures
//! the other clock: host nanoseconds spent inside the simulator's own hot
//! paths, so `exp_scale` can gate events/sec and a profile table shows
//! which scope to optimize next (ROADMAP item 3).
//!
//! # Design
//!
//! - A single global `ENABLED` flag, loaded `Relaxed`. The [`crate::scope!`]
//!   macro checks it first, so a disabled run pays one atomic load and a
//!   branch per instrumented scope — nothing else. No timers fire, no
//!   thread-locals are touched.
//! - Each `scope!` callsite caches its interned scope id in a `static
//!   AtomicU32`, so the name → id lookup (a mutex-guarded registry) runs
//!   once per callsite per process, not once per call.
//! - Stats live in a thread-local table indexed by scope id; the guard
//!   stack carries a `child_ns` accumulator so a parent's **self** time
//!   (total minus time spent in instrumented children) falls out at
//!   report time. The simulator is single-threaded, so [`finish`] reads
//!   the calling thread's table.
//! - The profiler never reads or writes any simulation state: enabling it
//!   cannot change a `RunReport` byte (pinned by `tests/self_profile.rs`).
//!
//! # Heartbeat
//!
//! Long runs are silent for minutes; [`note_event`] (called by
//! [`crate::run`] only while enabled) counts drained events and, every
//! [`HEARTBEAT_CHECK_EVERY`] events, checks the host clock. When the
//! configured interval has passed it prints one stderr line: virtual
//! time, events drained, events/sec, and the top-3 scopes by self time.
//!
//! # Allocation counters
//!
//! With the off-by-default `alloc-count` cargo feature, `CountingAlloc`
//! is installed as the global allocator and [`SelfProfile`] reports
//! allocation count/bytes; without the feature those fields are `null`.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

use crate::Time;

/// How many drained events between host-clock checks in [`note_event`].
pub const HEARTBEAT_CHECK_EVERY: u64 = 8192;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Interned scope names; a scope id is an index into this table.
static REGISTRY: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());

/// Sentinel meaning "this callsite has not interned its name yet".
const UNINTERNED: u32 = u32::MAX;

/// Per-scope accumulators (host nanoseconds).
#[derive(Clone, Copy, Default)]
struct ScopeStats {
    calls: u64,
    total_ns: u64,
    child_ns: u64,
    max_ns: u64,
}

/// One live `scope!` frame on the guard stack.
struct Frame {
    id: u32,
    /// Host ns spent in already-completed instrumented children.
    child_ns: u64,
}

#[derive(Default)]
struct Tls {
    stats: Vec<ScopeStats>,
    stack: Vec<Frame>,
    run_start: Option<Instant>,
    events: u64,
    virtual_now_ns: u64,
    heartbeat_secs: Option<f64>,
    last_heartbeat: Option<Instant>,
}

thread_local! {
    static TLS: RefCell<Tls> = RefCell::new(Tls::default());
}

/// Is the profiler currently enabled? One relaxed load — this is the
/// whole cost of a disabled [`crate::scope!`].
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Interns `name` once and caches the id in the callsite's static slot.
/// Called by the [`crate::scope!`] macro; not meant for direct use.
#[doc(hidden)]
pub fn intern(slot: &AtomicU32, name: &'static str) -> u32 {
    let cached = slot.load(Ordering::Relaxed);
    if cached != UNINTERNED {
        return cached;
    }
    let mut reg = REGISTRY.lock().expect("scope registry poisoned");
    // Re-check under the lock (another thread may have interned it), and
    // dedup by name so re-registered callsites share one row.
    let id = match reg.iter().position(|&n| n == name) {
        Some(i) => i as u32,
        None => {
            reg.push(name);
            (reg.len() - 1) as u32
        }
    };
    slot.store(id, Ordering::Relaxed);
    id
}

/// RAII guard for one instrumented scope. Construct via [`crate::scope!`].
pub struct ScopeGuard {
    id: u32,
    start: Instant,
}

/// Enters scope `id`: pushes a frame and starts the clock. Called by the
/// [`crate::scope!`] macro; not meant for direct use.
#[doc(hidden)]
pub fn enter(slot: &AtomicU32, name: &'static str) -> ScopeGuard {
    let id = intern(slot, name);
    TLS.with(|t| t.borrow_mut().stack.push(Frame { id, child_ns: 0 }));
    ScopeGuard {
        id,
        start: Instant::now(),
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        TLS.with(|t| {
            let t = &mut *t.borrow_mut();
            // Unwind to this guard's frame: a begin()/finish() cycle or a
            // panic may have left the stack out of sync; never attribute
            // to the wrong scope.
            let frame = loop {
                match t.stack.pop() {
                    Some(f) if f.id == self.id => break Some(f),
                    Some(_) => continue,
                    None => break None,
                }
            };
            let Some(frame) = frame else { return };
            if t.stats.len() <= self.id as usize {
                t.stats.resize(self.id as usize + 1, ScopeStats::default());
            }
            let s = &mut t.stats[self.id as usize];
            s.calls += 1;
            s.total_ns += elapsed;
            s.child_ns += frame.child_ns;
            s.max_ns = s.max_ns.max(elapsed);
            if let Some(parent) = t.stack.last_mut() {
                parent.child_ns += elapsed;
            }
        });
    }
}

/// Times a lexical scope under `name` when the profiler is enabled.
///
/// Expands to a guard binding, so the measurement covers from the macro
/// to the end of the enclosing block. Disabled cost: one relaxed atomic
/// load and a branch.
///
/// ```
/// fn hot_path() {
///     sim::scope!("store.consult");
///     // ... work measured as store.consult ...
/// }
/// ```
#[macro_export]
macro_rules! scope {
    ($name:expr) => {
        let _selfprof_guard = if $crate::profiler::is_enabled() {
            static SELFPROF_SCOPE_ID: ::std::sync::atomic::AtomicU32 =
                ::std::sync::atomic::AtomicU32::new(u32::MAX);
            Some($crate::profiler::enter(&SELFPROF_SCOPE_ID, $name))
        } else {
            None
        };
    };
}

/// Profiler run configuration (see [`begin`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct ProfilerConfig {
    /// Print a heartbeat line to stderr every this many host seconds
    /// (`None`: no heartbeat).
    pub heartbeat_secs: Option<f64>,
}

/// Enables the profiler for the calling thread's next run: clears all
/// accumulated stats, arms the heartbeat, and flips the global flag.
pub fn begin(cfg: ProfilerConfig) {
    TLS.with(|t| {
        let t = &mut *t.borrow_mut();
        t.stats.clear();
        t.stack.clear();
        t.events = 0;
        t.virtual_now_ns = 0;
        let now = Instant::now();
        t.run_start = Some(now);
        t.heartbeat_secs = cfg.heartbeat_secs;
        t.last_heartbeat = Some(now);
    });
    #[cfg(feature = "alloc-count")]
    alloc_count::reset();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Counts one drained event and drives the heartbeat. Called by
/// [`crate::run`] per event, only while enabled.
pub fn note_event(virtual_now: Time) {
    TLS.with(|t| {
        let t = &mut *t.borrow_mut();
        t.events += 1;
        t.virtual_now_ns = virtual_now.as_nanos();
        if t.events % HEARTBEAT_CHECK_EVERY != 0 {
            return;
        }
        let Some(every) = t.heartbeat_secs else {
            return;
        };
        let Some(last) = t.last_heartbeat else {
            return;
        };
        if last.elapsed().as_secs_f64() < every {
            return;
        }
        t.last_heartbeat = Some(Instant::now());
        let wall = t
            .run_start
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let rate = if wall > 0.0 {
            t.events as f64 / wall
        } else {
            0.0
        };
        let mut top: Vec<(usize, u64)> = t
            .stats
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.total_ns.saturating_sub(s.child_ns)))
            .filter(|&(_, ns)| ns > 0)
            .collect();
        top.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let reg = REGISTRY.lock().expect("scope registry poisoned");
        let tops: Vec<String> = top
            .iter()
            .take(3)
            .map(|&(i, ns)| {
                format!(
                    "{} {:.0}ms",
                    reg.get(i).copied().unwrap_or("?"),
                    ns as f64 / 1e6
                )
            })
            .collect();
        eprintln!(
            "[selfprof] vt={:.1}s events={} rate={:.0}/s wall={:.1}s top: {}",
            t.virtual_now_ns as f64 / 1e9,
            t.events,
            rate,
            wall,
            if tops.is_empty() {
                "-".to_string()
            } else {
                tops.join(" | ")
            }
        );
    });
}

/// One scope's row in the [`SelfProfile`] report.
#[derive(Debug, Clone, Serialize)]
pub struct ScopeProfile {
    /// The `scope!` name.
    pub name: String,
    /// Number of completed entries into the scope.
    pub calls: u64,
    /// Total host ns inside the scope, children included.
    pub total_ns: u64,
    /// Host ns excluding instrumented children (`total - child`).
    pub self_ns: u64,
    /// Mean host ns per call (`total / calls`).
    pub mean_ns: u64,
    /// Longest single call in host ns.
    pub max_ns: u64,
}

/// The rolled-up host-time report of one profiled run.
#[derive(Debug, Clone, Serialize)]
pub struct SelfProfile {
    /// Host wall-clock seconds from [`begin`] to [`finish`].
    pub wall_secs: f64,
    /// Events drained through [`crate::run`] while enabled.
    pub events: u64,
    /// Events per host second (`events / wall_secs`).
    pub events_per_sec: f64,
    /// Peak resident set size (`VmHWM` from `/proc/self/status`);
    /// `null` where unavailable.
    pub peak_rss_bytes: Option<u64>,
    /// Heap allocations while enabled (`alloc-count` feature only).
    pub alloc_count: Option<u64>,
    /// Heap bytes requested while enabled (`alloc-count` feature only).
    pub alloc_bytes: Option<u64>,
    /// Per-scope rows, sorted by self time descending.
    pub scopes: Vec<ScopeProfile>,
}

impl SelfProfile {
    /// Renders the per-scope table as aligned text lines.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<28} {:>12} {:>12} {:>12} {:>10} {:>12}\n",
            "scope", "calls", "total_ms", "self_ms", "mean_us", "max_us"
        ));
        for s in &self.scopes {
            out.push_str(&format!(
                "{:<28} {:>12} {:>12.2} {:>12.2} {:>10.2} {:>12.2}\n",
                s.name,
                s.calls,
                s.total_ns as f64 / 1e6,
                s.self_ns as f64 / 1e6,
                s.mean_ns as f64 / 1e3,
                s.max_ns as f64 / 1e3,
            ));
        }
        out
    }
}

/// Disables the profiler and returns the rolled-up report for the
/// calling thread's run.
pub fn finish() -> SelfProfile {
    ENABLED.store(false, Ordering::Relaxed);
    #[cfg(feature = "alloc-count")]
    let allocs = Some(alloc_count::snapshot());
    #[cfg(not(feature = "alloc-count"))]
    let allocs: Option<(u64, u64)> = None;
    TLS.with(|t| {
        let t = &mut *t.borrow_mut();
        let wall_secs = t
            .run_start
            .take()
            .map(|s| s.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        let reg = REGISTRY.lock().expect("scope registry poisoned");
        let mut scopes: Vec<ScopeProfile> = t
            .stats
            .iter()
            .enumerate()
            .filter(|(_, s)| s.calls > 0)
            .map(|(i, s)| ScopeProfile {
                name: reg.get(i).copied().unwrap_or("?").to_string(),
                calls: s.calls,
                total_ns: s.total_ns,
                self_ns: s.total_ns.saturating_sub(s.child_ns),
                mean_ns: s.total_ns / s.calls.max(1),
                max_ns: s.max_ns,
            })
            .collect();
        scopes.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then(a.name.cmp(&b.name)));
        let events = t.events;
        let events_per_sec = if wall_secs > 0.0 {
            events as f64 / wall_secs
        } else {
            0.0
        };
        t.stats.clear();
        t.stack.clear();
        SelfProfile {
            wall_secs,
            events,
            events_per_sec,
            peak_rss_bytes: peak_rss_bytes(),
            alloc_count: allocs.map(|(n, _)| n),
            alloc_bytes: allocs.map(|(_, b)| b),
            scopes,
        }
    })
}

/// Reads the process peak RSS (`VmHWM`) in bytes from
/// `/proc/self/status`. Returns `None` off Linux or on parse failure.
pub fn peak_rss_bytes() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                return Some(kb * 1024);
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// Counting global allocator (feature `alloc-count`): wraps the system
/// allocator with relaxed atomic counters so [`SelfProfile`] can report
/// allocation churn. Off by default — one `#[global_allocator]` per
/// binary, and counting adds two atomics per alloc.
#[cfg(feature = "alloc-count")]
pub mod alloc_count {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES: AtomicU64 = AtomicU64::new(0);

    /// The counting allocator; installed as `#[global_allocator]` when
    /// the feature is on.
    pub struct CountingAlloc;

    // SAFETY: defers entirely to `System`; the counters are side tables.
    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
            unsafe { System.alloc(layout) }
        }
        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) }
        }
        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
            unsafe { System.realloc(ptr, layout, new_size) }
        }
    }

    #[global_allocator]
    static GLOBAL: CountingAlloc = CountingAlloc;

    /// Zeroes the counters (called by [`super::begin`]).
    pub fn reset() {
        ALLOCS.store(0, Ordering::Relaxed);
        BYTES.store(0, Ordering::Relaxed);
    }

    /// Returns `(allocations, bytes)` since the last [`reset`].
    pub fn snapshot() -> (u64, u64) {
        (
            ALLOCS.load(Ordering::Relaxed),
            BYTES.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// `begin`/`finish` flip a process-global flag: tests that use them
    /// must not interleave, so they all hold this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn spin_for(ns: u64) {
        let start = Instant::now();
        while (start.elapsed().as_nanos() as u64) < ns {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_scopes_split_self_and_child_time() {
        let _guard = TEST_LOCK.lock().unwrap();
        begin(ProfilerConfig::default());
        {
            crate::scope!("outer");
            spin_for(2_000_000);
            {
                crate::scope!("inner");
                spin_for(2_000_000);
            }
            spin_for(1_000_000);
        }
        let p = finish();
        let outer = p.scopes.iter().find(|s| s.name == "outer").unwrap();
        let inner = p.scopes.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.calls, 1);
        assert_eq!(inner.calls, 1);
        // Outer total covers both spins; its self time excludes inner.
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns);
        assert!(inner.self_ns == inner.total_ns);
        // Self + child partition the total exactly.
        assert_eq!(outer.self_ns, outer.total_ns - inner.total_ns);
        assert!(outer.self_ns >= 2_000_000);
        assert!(inner.total_ns >= 2_000_000);
    }

    #[test]
    fn repeated_calls_accumulate_and_track_max() {
        let _guard = TEST_LOCK.lock().unwrap();
        begin(ProfilerConfig::default());
        for i in 0..3 {
            crate::scope!("repeat");
            spin_for(500_000 * (i + 1));
        }
        let p = finish();
        let s = p.scopes.iter().find(|s| s.name == "repeat").unwrap();
        assert_eq!(s.calls, 3);
        assert!(s.total_ns >= 3_000_000);
        assert!(s.max_ns >= 1_500_000);
        assert!(s.max_ns <= s.total_ns);
        assert_eq!(s.mean_ns, s.total_ns / 3);
    }

    #[test]
    fn disabled_mode_records_nothing() {
        let _guard = TEST_LOCK.lock().unwrap();
        assert!(!is_enabled());
        {
            crate::scope!("never");
            std::hint::black_box(1u64);
        }
        begin(ProfilerConfig::default());
        let p = finish();
        assert!(
            !p.scopes.iter().any(|s| s.name == "never"),
            "disabled scope! must not record"
        );
        assert_eq!(p.events, 0);
    }

    #[test]
    fn note_event_counts_and_rates() {
        let _guard = TEST_LOCK.lock().unwrap();
        begin(ProfilerConfig::default());
        for i in 0..100 {
            note_event(Time::from_nanos(i));
        }
        spin_for(1_000_000);
        let p = finish();
        assert_eq!(p.events, 100);
        assert!(p.wall_secs > 0.0);
        assert!(p.events_per_sec > 0.0);
    }

    #[test]
    fn peak_rss_reads_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("VmHWM should parse on linux");
            assert!(rss > 0);
        }
    }

    #[test]
    fn profile_serializes_with_sorted_scopes() {
        let _guard = TEST_LOCK.lock().unwrap();
        begin(ProfilerConfig::default());
        {
            crate::scope!("big");
            spin_for(2_000_000);
        }
        {
            crate::scope!("small");
            spin_for(200_000);
        }
        let p = finish();
        assert_eq!(p.scopes[0].name, "big", "sorted by self time desc");
        let json = serde_json::to_string(&p).expect("profile serializes");
        assert!(json.contains("\"events_per_sec\""));
        assert!(json.contains("\"scopes\""));
        let table = p.render_table();
        assert!(table.contains("big"));
        assert!(table.contains("self_ms"));
    }
}
