//! Deterministic fault injection: schedulable link, storage and instance
//! faults with a seeded, order-independent dice.
//!
//! A [`FaultPlan`] is a declarative description of everything that goes
//! wrong in a run: bandwidth-link degradation windows ([`LinkFault`]),
//! SSD read/write error and corruption rates ([`SsdFaults`]), DRAM
//! capacity pressure spikes ([`DramPressure`]) and whole-instance
//! crashes ([`InstanceCrash`]). The consuming layers (store, engine,
//! cluster) interpret the plan; this module only defines the vocabulary
//! plus the [`RetryPolicy`] governing recovery and the deterministic
//! [`FaultPlan::roll`] dice.
//!
//! Determinism is load-bearing: every probabilistic decision is a pure
//! hash of `(plan seed, stream tag, entity id, attempt counter)`, never a
//! draw from shared RNG state. Two runs with the same plan make byte-for-
//! byte identical fault decisions regardless of event interleaving, and a
//! plan whose rates are zero and whose schedules are empty
//! ([`FaultPlan::is_empty`]) injects nothing at all.

#![warn(clippy::unwrap_used)]

use crate::{Dur, Time};

/// A half-open virtual-time interval `[start, end)` during which a fault
/// is active.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWindow {
    /// First instant the fault is active.
    pub start: Time,
    /// First instant the fault is no longer active.
    pub end: Time,
}

impl FaultWindow {
    /// Builds a window; `end <= start` yields an empty window.
    pub fn new(start: Time, end: Time) -> Self {
        FaultWindow { start, end }
    }

    /// Returns `true` when `t` falls inside the window.
    pub fn contains(&self, t: Time) -> bool {
        t >= self.start && t < self.end
    }

    /// Returns `true` when the window covers no instant at all.
    pub fn is_empty(&self) -> bool {
        self.end <= self.start
    }
}

/// How a degraded link misbehaves during its fault window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LinkFaultKind {
    /// Transfers starting in the window take `factor`× their nominal
    /// duration (`factor >= 1`).
    Slowdown(f64),
    /// Transfers starting in the window are held until the window ends,
    /// then proceed at nominal speed.
    Stall,
}

/// A scheduled degradation of one named [`crate::BandwidthLink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkFault {
    /// `BandwidthLink::name` of the affected link (e.g. `"slow_rd"`).
    pub link: &'static str,
    /// Serving instance the fault applies to; `None` = every instance.
    pub instance: Option<u32>,
    /// When the fault is active.
    pub window: FaultWindow,
    /// What the fault does.
    pub kind: LinkFaultKind,
}

/// Stochastic SSD failure rates, each in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SsdFaults {
    /// Probability an individual disk-read attempt errors.
    pub read_error_rate: f64,
    /// Probability an individual disk-write attempt errors.
    pub write_error_rate: f64,
    /// Probability a saved entry's KV metadata is silently corrupted
    /// (detected by the store's checksum on the next load).
    pub corruption_rate: f64,
}

impl SsdFaults {
    /// Returns `true` when every rate is zero.
    pub fn is_empty(&self) -> bool {
        self.read_error_rate <= 0.0 && self.write_error_rate <= 0.0 && self.corruption_rate <= 0.0
    }
}

/// Retry-with-exponential-backoff parameters for failed store I/O.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries after the initial attempt (total attempts = `1 + max_retries`).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Dur,
    /// Multiplier applied per further retry (`>= 1`).
    pub multiplier: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Dur::from_millis(1),
            multiplier: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (0-based):
    /// `base · multiplier^attempt`.
    pub fn backoff(&self, attempt: u32) -> Dur {
        let scale = self.multiplier.powi(attempt.min(62) as i32);
        if !scale.is_finite() {
            return Dur::from_nanos(u64::MAX);
        }
        self.base_backoff * scale
    }
}

/// A scheduled DRAM capacity pressure spike: at `at`, a co-located
/// consumer claims `fraction` of the store's DRAM tier, forcing the
/// store to squeeze resident entries down to the remainder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramPressure {
    /// When the spike lands.
    pub at: Time,
    /// Fraction of DRAM capacity claimed, in `(0, 1]`.
    pub fraction: f64,
}

/// A scheduled whole-instance crash.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InstanceCrash {
    /// Which serving instance dies.
    pub instance: u32,
    /// When it dies.
    pub at: Time,
}

/// Dice-stream tags keeping unrelated fault decisions independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultStream {
    /// Disk-read error rolls.
    Read,
    /// Disk-write error rolls.
    Write,
    /// Save-time corruption rolls.
    Corrupt,
}

impl FaultStream {
    fn tag(self) -> u64 {
        match self {
            FaultStream::Read => 0x52454144,
            FaultStream::Write => 0x57524954,
            FaultStream::Corrupt => 0x434f5252,
        }
    }
}

/// The complete fault schedule of one run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed of the fault dice (independent of the workload seed).
    pub seed: u64,
    /// Link degradation windows.
    pub link_faults: Vec<LinkFault>,
    /// SSD error/corruption rates.
    pub ssd: SsdFaults,
    /// Recovery policy for failed store I/O.
    pub retry: RetryPolicy,
    /// DRAM pressure spikes.
    pub pressure: Vec<DramPressure>,
    /// Instance crashes.
    pub crashes: Vec<InstanceCrash>,
}

impl FaultPlan {
    /// An empty plan with the given dice seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Returns `true` when the plan injects nothing: no link windows, no
    /// crashes, no pressure spikes, all SSD rates zero. Running with an
    /// empty plan is behaviorally identical to running with no plan.
    pub fn is_empty(&self) -> bool {
        self.link_faults.iter().all(|f| f.window.is_empty())
            && self.ssd.is_empty()
            && self.pressure.is_empty()
            && self.crashes.is_empty()
    }

    /// Adds a link slowdown window (`factor >= 1`).
    pub fn with_link_slowdown(
        mut self,
        link: &'static str,
        start: Time,
        end: Time,
        factor: f64,
    ) -> Self {
        assert!(
            factor.is_finite() && factor >= 1.0,
            "slowdown factor must be finite and >= 1, got {factor}"
        );
        self.link_faults.push(LinkFault {
            link,
            instance: None,
            window: FaultWindow::new(start, end),
            kind: LinkFaultKind::Slowdown(factor),
        });
        self
    }

    /// Adds a link stall window: transfers starting inside it wait for
    /// the window to end.
    pub fn with_link_stall(mut self, link: &'static str, start: Time, end: Time) -> Self {
        self.link_faults.push(LinkFault {
            link,
            instance: None,
            window: FaultWindow::new(start, end),
            kind: LinkFaultKind::Stall,
        });
        self
    }

    /// Sets the SSD error/corruption rates.
    pub fn with_ssd_errors(mut self, read: f64, write: f64, corruption: f64) -> Self {
        for (label, rate) in [("read", read), ("write", write), ("corruption", corruption)] {
            assert!(
                (0.0..=1.0).contains(&rate),
                "{label} error rate must be in [0, 1], got {rate}"
            );
        }
        self.ssd = SsdFaults {
            read_error_rate: read,
            write_error_rate: write,
            corruption_rate: corruption,
        };
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Schedules a DRAM pressure spike.
    pub fn with_dram_pressure(mut self, at: Time, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "pressure fraction must be in (0, 1], got {fraction}"
        );
        self.pressure.push(DramPressure { at, fraction });
        self
    }

    /// Schedules an instance crash.
    pub fn with_crash(mut self, instance: u32, at: Time) -> Self {
        self.crashes.push(InstanceCrash { instance, at });
        self
    }

    /// The deterministic fault dice: a uniform draw in `[0, 1)` that is a
    /// pure function of `(seed, stream, entity, attempt)`. Identical
    /// inputs always yield identical draws, independent of call order.
    pub fn roll(&self, stream: FaultStream, entity: u64, attempt: u64) -> f64 {
        dice(self.seed, stream, entity, attempt)
    }

    /// Rolls whether fault-stream `stream` fires for `(entity, attempt)`
    /// at probability `rate`.
    pub fn fires(&self, stream: FaultStream, entity: u64, attempt: u64, rate: f64) -> bool {
        rate > 0.0 && self.roll(stream, entity, attempt) < rate
    }
}

/// The deterministic fault dice as a free function: a uniform draw in
/// `[0, 1)` that is a pure hash of `(seed, stream, entity, attempt)`
/// (splitmix64 finalizer). See [`FaultPlan::roll`].
pub fn dice(seed: u64, stream: FaultStream, entity: u64, attempt: u64) -> f64 {
    let mut x = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(stream.tag())
        .wrapping_add(entity.wrapping_mul(0xbf58476d1ce4e5b9))
        .wrapping_add(attempt.wrapping_mul(0x94d049bb133111eb));
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_reports_empty() {
        assert!(FaultPlan::new(7).is_empty());
        // Empty windows don't count as faults.
        let plan = FaultPlan::new(7).with_link_slowdown("x", Time::from_millis(5), Time::ZERO, 2.0);
        assert!(plan.is_empty());
        assert!(!FaultPlan::new(7).with_crash(0, Time::ZERO).is_empty());
        assert!(!FaultPlan::new(7).with_ssd_errors(0.1, 0.0, 0.0).is_empty());
    }

    #[test]
    fn windows_are_half_open() {
        let w = FaultWindow::new(Time::from_millis(10), Time::from_millis(20));
        assert!(!w.contains(Time::from_millis(9)));
        assert!(w.contains(Time::from_millis(10)));
        assert!(w.contains(Time::from_millis(19)));
        assert!(!w.contains(Time::from_millis(20)));
    }

    #[test]
    fn backoff_grows_exponentially_and_saturates() {
        let r = RetryPolicy {
            max_retries: 10,
            base_backoff: Dur::from_millis(1),
            multiplier: 2.0,
        };
        assert_eq!(r.backoff(0), Dur::from_millis(1));
        assert_eq!(r.backoff(1), Dur::from_millis(2));
        assert_eq!(r.backoff(3), Dur::from_millis(8));
        // Extreme attempts never panic, they saturate.
        assert!(r.backoff(200) > Dur::from_millis(8));
    }

    #[test]
    fn dice_is_deterministic_and_stream_separated() {
        let plan = FaultPlan::new(42);
        let a = plan.roll(FaultStream::Read, 5, 0);
        assert_eq!(a, plan.roll(FaultStream::Read, 5, 0));
        assert!((0.0..1.0).contains(&a));
        assert_ne!(a, plan.roll(FaultStream::Write, 5, 0));
        assert_ne!(a, plan.roll(FaultStream::Read, 6, 0));
        assert_ne!(a, plan.roll(FaultStream::Read, 5, 1));
        assert_ne!(a, FaultPlan::new(43).roll(FaultStream::Read, 5, 0));
    }

    #[test]
    fn fires_respects_rate_extremes() {
        let plan = FaultPlan::new(1);
        for e in 0..100 {
            assert!(!plan.fires(FaultStream::Read, e, 0, 0.0));
            assert!(plan.fires(FaultStream::Read, e, 0, 1.0));
        }
        // A 50% rate fires sometimes but not always.
        let hits = (0..1000)
            .filter(|&e| plan.fires(FaultStream::Read, e, 0, 0.5))
            .count();
        assert!(hits > 300 && hits < 700, "suspicious dice: {hits}/1000");
    }

    #[test]
    #[should_panic(expected = "slowdown factor")]
    fn sub_unit_slowdown_rejected() {
        let _ = FaultPlan::new(0).with_link_slowdown("x", Time::ZERO, Time::from_millis(1), 0.5);
    }
}
