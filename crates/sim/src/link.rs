//! FIFO-serialized bandwidth resources.
//!
//! A [`BandwidthLink`] models a DMA stream or an I/O channel: transfers are
//! queued back-to-back at a fixed byte rate. This matches how CachedAttention
//! drives dedicated CUDA copy streams (one per direction) and dedicated disk
//! I/O threads — within one stream, transfers serialize.

use crate::{Dur, Time};

/// A FIFO transfer channel with a fixed bandwidth.
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    name: &'static str,
    bytes_per_sec: f64,
    busy_until: Time,
    total_bytes: u64,
    busy_nanos: u128,
    transfers: u64,
}

impl BandwidthLink {
    /// Creates a link transferring `bytes_per_sec` bytes per virtual second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(name: &'static str, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link {name} needs positive bandwidth, got {bytes_per_sec}"
        );
        BandwidthLink {
            name,
            bytes_per_sec,
            busy_until: Time::ZERO,
            total_bytes: 0,
            busy_nanos: 0,
            transfers: 0,
        }
    }

    /// Returns the link's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns how long moving `bytes` takes on an idle link.
    pub fn duration_of(&self, bytes: u64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / self.bytes_per_sec)
    }

    /// Enqueues a transfer of `bytes` at instant `now`; returns its
    /// completion time.
    ///
    /// The transfer starts at `max(now, busy_until)` — i.e. it waits behind
    /// any transfer already in flight — and occupies the link for
    /// `bytes / bandwidth`.
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let start = now.max(self.busy_until);
        let dur = self.duration_of(bytes);
        let done = start + dur;
        self.busy_until = done;
        self.total_bytes += bytes;
        self.busy_nanos += dur.as_nanos() as u128;
        self.transfers += 1;
        done
    }

    /// Returns the instant the last queued transfer completes.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Marks the link busy through `until` for an externally timed
    /// transfer of `bytes` (e.g. a pipelined layer-wise load whose
    /// schedule was computed elsewhere). Never moves `busy_until`
    /// backwards.
    pub fn occupy(&mut self, until: Time, bytes: u64) {
        if until > self.busy_until {
            self.busy_until = until;
        }
        self.total_bytes += bytes;
        self.busy_nanos += self.duration_of(bytes).as_nanos() as u128;
        self.transfers += 1;
    }

    /// Returns `true` when no transfer would have to wait at `now`.
    pub fn idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Returns the queueing delay a transfer issued at `now` would see.
    pub fn backlog_at(&self, now: Time) -> Dur {
        self.busy_until.saturating_since(now)
    }

    /// Returns the total bytes ever enqueued.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns the number of transfers ever enqueued.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Returns the fraction of `[0, now]` the link spent transferring.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == Time::ZERO {
            return 0.0;
        }
        self.busy_nanos as f64 / now.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_transfer_takes_bytes_over_bandwidth() {
        let mut link = BandwidthLink::new("pcie", 1_000_000_000.0);
        let done = link.transfer(Time::ZERO, 500_000_000);
        assert_eq!(done.as_secs_f64(), 0.5);
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut link = BandwidthLink::new("pcie", 1_000.0);
        let a = link.transfer(Time::ZERO, 1_000);
        assert_eq!(a.as_secs_f64(), 1.0);
        // Issued while the first is still in flight: waits its turn.
        let b = link.transfer(Time::from_secs_f64(0.5), 1_000);
        assert_eq!(b.as_secs_f64(), 2.0);
        // Issued after the link drained: starts immediately.
        let c = link.transfer(Time::from_secs_f64(10.0), 1_000);
        assert_eq!(c.as_secs_f64(), 11.0);
    }

    #[test]
    fn backlog_reflects_pending_work() {
        let mut link = BandwidthLink::new("ssd", 100.0);
        link.transfer(Time::ZERO, 200);
        assert_eq!(link.backlog_at(Time::ZERO).as_secs_f64(), 2.0);
        assert_eq!(link.backlog_at(Time::from_secs_f64(1.5)).as_secs_f64(), 0.5);
        assert!(link.idle_at(Time::from_secs_f64(2.0)));
    }

    #[test]
    fn stats_accumulate() {
        let mut link = BandwidthLink::new("ssd", 1_000.0);
        link.transfer(Time::ZERO, 500);
        link.transfer(Time::ZERO, 500);
        assert_eq!(link.total_bytes(), 1_000);
        assert_eq!(link.transfers(), 2);
        // Fully busy through t=1s.
        assert!((link.utilization(Time::from_secs_f64(1.0)) - 1.0).abs() < 1e-9);
        // Half busy through t=2s.
        assert!((link.utilization(Time::from_secs_f64(2.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthLink::new("bad", 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Completions are monotone (FIFO) and each transfer occupies
            /// at least its bandwidth-implied duration; total bytes are
            /// conserved.
            #[test]
            fn fifo_order_and_conservation(
                xfers in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000_000), 1..40),
            ) {
                let mut link = BandwidthLink::new("p", 1e9);
                let mut last_done = Time::ZERO;
                let mut issued = 0u64;
                let mut clock = Time::ZERO;
                for (gap_ns, bytes) in xfers {
                    clock = Time::from_nanos(clock.as_nanos() + gap_ns);
                    let done = link.transfer(clock, bytes);
                    // FIFO: completions never reorder.
                    prop_assert!(done >= last_done);
                    // Physics: finish no earlier than start + size/bw.
                    prop_assert!(done >= clock + link.duration_of(bytes));
                    last_done = done;
                    issued += bytes;
                }
                prop_assert_eq!(link.total_bytes(), issued);
                prop_assert_eq!(link.busy_until(), last_done);
            }
        }
    }

    #[test]
    fn occupy_extends_but_never_rewinds() {
        let mut link = BandwidthLink::new("h2d", 1_000.0);
        link.occupy(Time::from_secs_f64(2.0), 500);
        assert_eq!(link.busy_until(), Time::from_secs_f64(2.0));
        // An earlier externally timed transfer cannot rewind the link.
        link.occupy(Time::from_secs_f64(1.0), 100);
        assert_eq!(link.busy_until(), Time::from_secs_f64(2.0));
        assert_eq!(link.total_bytes(), 600);
        assert_eq!(link.transfers(), 2);
    }
}
