//! FIFO-serialized bandwidth resources.
//!
//! A [`BandwidthLink`] models a DMA stream or an I/O channel: transfers are
//! queued back-to-back at a fixed byte rate. This matches how CachedAttention
//! drives dedicated CUDA copy streams (one per direction) and dedicated disk
//! I/O threads — within one stream, transfers serialize.

use crate::fault::{FaultWindow, LinkFaultKind};
use crate::{Dur, Time};

/// A FIFO transfer channel with a fixed bandwidth.
#[derive(Debug, Clone)]
pub struct BandwidthLink {
    name: &'static str,
    bytes_per_sec: f64,
    busy_until: Time,
    total_bytes: u64,
    busy_nanos: u128,
    transfers: u64,
    /// Scheduled degradation windows (empty in fault-free runs, so the
    /// nominal code path is untouched).
    faults: Vec<(FaultWindow, LinkFaultKind)>,
}

impl BandwidthLink {
    /// Creates a link transferring `bytes_per_sec` bytes per virtual second.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive and finite.
    pub fn new(name: &'static str, bytes_per_sec: f64) -> Self {
        assert!(
            bytes_per_sec.is_finite() && bytes_per_sec > 0.0,
            "link {name} needs positive bandwidth, got {bytes_per_sec}"
        );
        BandwidthLink {
            name,
            bytes_per_sec,
            busy_until: Time::ZERO,
            total_bytes: 0,
            busy_nanos: 0,
            transfers: 0,
            faults: Vec::new(),
        }
    }

    /// Schedules a degradation window on this link. Transfers whose
    /// start instant falls inside a stall window wait for the window to
    /// end; transfers starting inside a slowdown window take the
    /// configured multiple of their nominal duration. With no windows
    /// installed, [`BandwidthLink::transfer`] is byte-identical to the
    /// fault-free implementation.
    pub fn add_fault_window(&mut self, window: FaultWindow, kind: LinkFaultKind) {
        if !window.is_empty() {
            self.faults.push((window, kind));
        }
    }

    /// Returns the link's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns how long moving `bytes` takes on an idle link.
    ///
    /// Total for any input: a duration too large to represent (huge
    /// `bytes`, or a degraded/zero effective bandwidth) saturates at the
    /// maximum representable duration instead of panicking.
    pub fn duration_of(&self, bytes: u64) -> Dur {
        let secs = bytes as f64 / self.bytes_per_sec;
        if !secs.is_finite() || secs < 0.0 {
            return Dur::from_nanos(u64::MAX);
        }
        // f64 → u64 casts saturate, so huge finite values clamp too.
        Dur::from_secs_f64(secs)
    }

    /// Completion instant of a transfer spanning `dur` from `start`,
    /// saturating at [`Time::MAX`] instead of overflowing virtual time.
    fn saturating_done(start: Time, dur: Dur) -> Time {
        Time::from_nanos(start.as_nanos().saturating_add(dur.as_nanos()))
    }

    /// Enqueues a transfer of `bytes` at instant `now`; returns its
    /// completion time.
    ///
    /// The transfer starts at `max(now, busy_until)` — i.e. it waits behind
    /// any transfer already in flight — and occupies the link for
    /// `bytes / bandwidth`. An active stall window delays the start; an
    /// active slowdown window stretches the duration. A transfer whose
    /// completion would overflow virtual time saturates at [`Time::MAX`]
    /// while still accounting its bytes.
    pub fn transfer(&mut self, now: Time, bytes: u64) -> Time {
        let mut start = now.max(self.busy_until);
        let mut dur = self.duration_of(bytes);
        if !self.faults.is_empty() {
            start = self.fault_delayed_start(start);
            dur = self.fault_stretched_dur(start, dur);
        }
        let done = Self::saturating_done(start, dur);
        self.busy_until = done;
        self.total_bytes = self.total_bytes.saturating_add(bytes);
        self.busy_nanos += dur.as_nanos() as u128;
        self.transfers += 1;
        done
    }

    /// Pushes `start` past every stall window containing it (windows may
    /// chain, so iterate to a fixed point — bounded by the window count).
    fn fault_delayed_start(&self, mut start: Time) -> Time {
        for _ in 0..=self.faults.len() {
            let mut moved = false;
            for (w, kind) in &self.faults {
                if matches!(kind, LinkFaultKind::Stall) && w.contains(start) {
                    start = w.end;
                    moved = true;
                }
            }
            if !moved {
                break;
            }
        }
        start
    }

    /// Stretches `dur` by every slowdown window containing `start`.
    fn fault_stretched_dur(&self, start: Time, mut dur: Dur) -> Dur {
        for (w, kind) in &self.faults {
            if let LinkFaultKind::Slowdown(factor) = kind {
                if w.contains(start) {
                    dur = dur * *factor;
                }
            }
        }
        dur
    }

    /// Returns the instant the last queued transfer completes.
    pub fn busy_until(&self) -> Time {
        self.busy_until
    }

    /// Marks the link busy through `until` for an externally timed
    /// transfer of `bytes` (e.g. a pipelined layer-wise load whose
    /// schedule was computed elsewhere). Never moves `busy_until`
    /// backwards.
    pub fn occupy(&mut self, until: Time, bytes: u64) {
        if until > self.busy_until {
            self.busy_until = until;
        }
        self.total_bytes = self.total_bytes.saturating_add(bytes);
        self.busy_nanos += self.duration_of(bytes).as_nanos() as u128;
        self.transfers += 1;
    }

    /// Returns `true` when no transfer would have to wait at `now`.
    pub fn idle_at(&self, now: Time) -> bool {
        self.busy_until <= now
    }

    /// Returns the queueing delay a transfer issued at `now` would see.
    pub fn backlog_at(&self, now: Time) -> Dur {
        self.busy_until.saturating_since(now)
    }

    /// Returns the total bytes ever enqueued.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Returns the number of transfers ever enqueued.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Returns the fraction of `[0, now]` the link spent transferring.
    pub fn utilization(&self, now: Time) -> f64 {
        if now == Time::ZERO {
            return 0.0;
        }
        self.busy_nanos as f64 / now.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_transfer_takes_bytes_over_bandwidth() {
        let mut link = BandwidthLink::new("pcie", 1_000_000_000.0);
        let done = link.transfer(Time::ZERO, 500_000_000);
        assert_eq!(done.as_secs_f64(), 0.5);
    }

    #[test]
    fn transfers_serialize_fifo() {
        let mut link = BandwidthLink::new("pcie", 1_000.0);
        let a = link.transfer(Time::ZERO, 1_000);
        assert_eq!(a.as_secs_f64(), 1.0);
        // Issued while the first is still in flight: waits its turn.
        let b = link.transfer(Time::from_secs_f64(0.5), 1_000);
        assert_eq!(b.as_secs_f64(), 2.0);
        // Issued after the link drained: starts immediately.
        let c = link.transfer(Time::from_secs_f64(10.0), 1_000);
        assert_eq!(c.as_secs_f64(), 11.0);
    }

    #[test]
    fn backlog_reflects_pending_work() {
        let mut link = BandwidthLink::new("ssd", 100.0);
        link.transfer(Time::ZERO, 200);
        assert_eq!(link.backlog_at(Time::ZERO).as_secs_f64(), 2.0);
        assert_eq!(link.backlog_at(Time::from_secs_f64(1.5)).as_secs_f64(), 0.5);
        assert!(link.idle_at(Time::from_secs_f64(2.0)));
    }

    #[test]
    fn stats_accumulate() {
        let mut link = BandwidthLink::new("ssd", 1_000.0);
        link.transfer(Time::ZERO, 500);
        link.transfer(Time::ZERO, 500);
        assert_eq!(link.total_bytes(), 1_000);
        assert_eq!(link.transfers(), 2);
        // Fully busy through t=1s.
        assert!((link.utilization(Time::from_secs_f64(1.0)) - 1.0).abs() < 1e-9);
        // Half busy through t=2s.
        assert!((link.utilization(Time::from_secs_f64(2.0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive bandwidth")]
    fn zero_bandwidth_rejected() {
        let _ = BandwidthLink::new("bad", 0.0);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Completions are monotone (FIFO) and each transfer occupies
            /// at least its bandwidth-implied duration; total bytes are
            /// conserved.
            #[test]
            fn fifo_order_and_conservation(
                xfers in proptest::collection::vec((0u64..1_000_000, 0u64..1_000_000_000), 1..40),
            ) {
                let mut link = BandwidthLink::new("p", 1e9);
                let mut last_done = Time::ZERO;
                let mut issued = 0u64;
                let mut clock = Time::ZERO;
                for (gap_ns, bytes) in xfers {
                    clock = Time::from_nanos(clock.as_nanos() + gap_ns);
                    let done = link.transfer(clock, bytes);
                    // FIFO: completions never reorder.
                    prop_assert!(done >= last_done);
                    // Physics: finish no earlier than start + size/bw.
                    prop_assert!(done >= clock + link.duration_of(bytes));
                    last_done = done;
                    issued += bytes;
                }
                prop_assert_eq!(link.total_bytes(), issued);
                prop_assert_eq!(link.busy_until(), last_done);
            }
        }
    }

    #[test]
    fn overflowing_transfers_saturate_instead_of_panicking() {
        let mut link = BandwidthLink::new("ssd", 1.0);
        // u64::MAX bytes at 1 B/s ≈ 5.8e11 years: far past Time::MAX.
        let done = link.transfer(Time::ZERO, u64::MAX);
        assert_eq!(done, Time::MAX);
        // A follow-up transfer queues behind it and saturates too —
        // `start + dur` would previously panic on virtual-time overflow.
        let done2 = link.transfer(Time::from_secs_f64(1.0), 1);
        assert_eq!(done2, Time::MAX);
        assert_eq!(link.busy_until(), Time::MAX);
        // Bytes are still accounted (saturating), not silently dropped.
        assert_eq!(link.transfers(), 2);
        assert_eq!(link.total_bytes(), u64::MAX);
    }

    #[test]
    fn occupy_saturates_on_unrepresentable_durations() {
        let mut link = BandwidthLink::new("ssd", f64::MIN_POSITIVE);
        // bytes / bytes_per_sec is +inf here: duration_of must clamp
        // rather than trip from_secs_f64's finiteness assert.
        assert_eq!(link.duration_of(u64::MAX), Dur::from_nanos(u64::MAX));
        link.occupy(Time::from_secs_f64(2.0), 1_000);
        assert_eq!(link.busy_until(), Time::from_secs_f64(2.0));
        assert_eq!(link.total_bytes(), 1_000);
    }

    #[test]
    fn stall_window_delays_transfers_inside_it() {
        let mut link = BandwidthLink::new("ssd", 1_000.0);
        link.add_fault_window(
            FaultWindow::new(Time::from_secs_f64(1.0), Time::from_secs_f64(3.0)),
            LinkFaultKind::Stall,
        );
        // Before the window: nominal.
        assert_eq!(link.transfer(Time::ZERO, 500).as_secs_f64(), 0.5);
        // Starting inside the window: held until t=3, then 1s of work.
        assert_eq!(
            link.transfer(Time::from_secs_f64(1.5), 1_000).as_secs_f64(),
            4.0
        );
        // After the window: nominal again.
        assert_eq!(
            link.transfer(Time::from_secs_f64(10.0), 1_000)
                .as_secs_f64(),
            11.0
        );
    }

    #[test]
    fn slowdown_window_stretches_transfers_inside_it() {
        let mut link = BandwidthLink::new("pcie", 1_000.0);
        link.add_fault_window(
            FaultWindow::new(Time::from_secs_f64(1.0), Time::from_secs_f64(2.0)),
            LinkFaultKind::Slowdown(4.0),
        );
        assert_eq!(link.transfer(Time::ZERO, 500).as_secs_f64(), 0.5);
        // Starts at t=1.5, inside the window: 1s of work becomes 4s.
        assert_eq!(
            link.transfer(Time::from_secs_f64(1.5), 1_000).as_secs_f64(),
            5.5
        );
        // Empty windows are ignored outright.
        let mut clean = BandwidthLink::new("pcie", 1_000.0);
        clean.add_fault_window(
            FaultWindow::new(Time::from_secs_f64(2.0), Time::from_secs_f64(1.0)),
            LinkFaultKind::Stall,
        );
        assert_eq!(
            clean
                .transfer(Time::from_secs_f64(1.5), 1_000)
                .as_secs_f64(),
            2.5
        );
    }

    #[test]
    fn occupy_extends_but_never_rewinds() {
        let mut link = BandwidthLink::new("h2d", 1_000.0);
        link.occupy(Time::from_secs_f64(2.0), 500);
        assert_eq!(link.busy_until(), Time::from_secs_f64(2.0));
        // An earlier externally timed transfer cannot rewind the link.
        link.occupy(Time::from_secs_f64(1.0), 100);
        assert_eq!(link.busy_until(), Time::from_secs_f64(2.0));
        assert_eq!(link.total_bytes(), 600);
        assert_eq!(link.transfers(), 2);
    }
}
