#![warn(missing_docs)]

//! Deterministic discrete-event simulation kernel.
//!
//! This crate provides the substrate on which the CachedAttention serving
//! simulator is built:
//!
//! - [`Time`] / [`Dur`]: typed virtual instants and durations with
//!   nanosecond resolution.
//! - [`EventQueue`] and the [`World`] trait: a stable-order event loop.
//! - [`BandwidthLink`]: a FIFO-serialized transfer resource used to model
//!   PCIe streams and SSD I/O channels.
//! - [`CapacityPool`]: byte-granularity space accounting for HBM, DRAM and
//!   disk tiers.
//! - [`SimRng`]: a seeded random source with the distributions the workload
//!   generator needs (exponential, log-normal, Zipf, categorical).
//!
//! All randomness flows from a single `u64` seed and event ordering is
//! total (time, insertion sequence), so simulations are bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use sim::{Dur, EventQueue, Time, World};
//!
//! struct Counter {
//!     fired: u32,
//! }
//!
//! impl World for Counter {
//!     type Event = ();
//!     fn handle(&mut self, now: Time, _ev: (), q: &mut EventQueue<()>) {
//!         self.fired += 1;
//!         if self.fired < 3 {
//!             q.push(now + Dur::from_secs_f64(1.0), ());
//!         }
//!     }
//! }
//!
//! let mut world = Counter { fired: 0 };
//! let mut q = EventQueue::new();
//! q.push(Time::ZERO, ());
//! let end = sim::run(&mut world, &mut q, None);
//! assert_eq!(world.fired, 3);
//! assert_eq!(end.as_secs_f64(), 2.0);
//! ```

pub mod fault;
mod link;
mod pool;
pub mod profiler;
mod queue;
mod rng;
mod time;

pub use fault::{
    DramPressure, FaultPlan, FaultStream, FaultWindow, InstanceCrash, LinkFault, LinkFaultKind,
    RetryPolicy, SsdFaults,
};
pub use link::BandwidthLink;
pub use pool::{CapacityPool, PoolError};
pub use profiler::{ProfilerConfig, ScopeProfile, SelfProfile};
pub use queue::{BoundedInbox, EventQueue};
pub use rng::SimRng;
pub use time::{Dur, Time};

/// A simulated system: owns the mutable state and dispatches events.
///
/// The event loop ([`run`]) pops events in (time, sequence) order and hands
/// them to [`World::handle`] together with the current virtual time and the
/// queue, so handlers can schedule follow-up events.
pub trait World {
    /// The event type dispatched through the queue.
    type Event;

    /// Handles one event at virtual time `now`.
    fn handle(&mut self, now: Time, ev: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// Runs the event loop until the queue drains or `until` is passed.
///
/// Returns the virtual time of the last event processed (or `Time::ZERO`
/// when no event ran). Events scheduled at exactly `until` still run;
/// events strictly after it are left in the queue.
pub fn run<W: World>(world: &mut W, q: &mut EventQueue<W::Event>, until: Option<Time>) -> Time {
    let mut last = Time::ZERO;
    while let Some(&at) = q.peek_time() {
        if let Some(limit) = until {
            if at > limit {
                break;
            }
        }
        let (now, ev) = q.pop().expect("peek_time guaranteed an event");
        last = now;
        world.handle(now, ev, q);
        // Host-time self-profiling: count the drained event and let the
        // heartbeat fire. Disabled cost is the one relaxed load.
        if profiler::is_enabled() {
            profiler::note_event(now);
        }
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world that records the order in which tagged events fire.
    struct Recorder {
        seen: Vec<(Time, u32)>,
    }

    impl World for Recorder {
        type Event = u32;
        fn handle(&mut self, now: Time, ev: u32, _q: &mut EventQueue<u32>) {
            self.seen.push((now, ev));
        }
    }

    #[test]
    fn run_dispatches_in_time_order() {
        let mut w = Recorder { seen: Vec::new() };
        let mut q = EventQueue::new();
        q.push(Time::from_secs_f64(2.0), 2);
        q.push(Time::from_secs_f64(1.0), 1);
        q.push(Time::from_secs_f64(3.0), 3);
        run(&mut w, &mut q, None);
        let tags: Vec<u32> = w.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn run_respects_until_limit() {
        let mut w = Recorder { seen: Vec::new() };
        let mut q = EventQueue::new();
        for i in 1..=5 {
            q.push(Time::from_secs_f64(i as f64), i);
        }
        let end = run(&mut w, &mut q, Some(Time::from_secs_f64(3.0)));
        assert_eq!(w.seen.len(), 3);
        assert_eq!(end, Time::from_secs_f64(3.0));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn same_time_events_fire_in_insertion_order() {
        let mut w = Recorder { seen: Vec::new() };
        let mut q = EventQueue::new();
        let t = Time::from_secs_f64(1.0);
        for i in 0..100 {
            q.push(t, i);
        }
        run(&mut w, &mut q, None);
        let tags: Vec<u32> = w.seen.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }
}
