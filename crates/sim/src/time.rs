//! Typed virtual time: nanosecond instants ([`Time`]) and durations
//! ([`Dur`]).
//!
//! Keeping instants and durations as distinct newtypes prevents the classic
//! unit bugs (adding two instants, subtracting a duration from a duration
//! expecting an instant, mixing seconds and nanoseconds).

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// Number of nanoseconds per second.
const NANOS_PER_SEC: f64 = 1_000_000_000.0;

/// A virtual instant, in nanoseconds since simulation start.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Time(u64);

/// A virtual duration, in nanoseconds.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Dur(u64);

impl Time {
    /// The simulation epoch.
    pub const ZERO: Time = Time(0);

    /// The greatest representable instant; useful as an "infinity" sentinel.
    pub const MAX: Time = Time(u64::MAX);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Time {
        Time(ns)
    }

    /// Creates an instant from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite; virtual time never runs
    /// backwards.
    pub fn from_secs_f64(secs: f64) -> Time {
        assert!(secs.is_finite() && secs >= 0.0, "invalid instant {secs}");
        Time((secs * NANOS_PER_SEC).round() as u64)
    }

    /// Creates an instant from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Time {
        Time(ms * 1_000_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Returns the later of two instants.
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of two instants.
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns `self - other`, or [`Dur::ZERO`] when `other` is later.
    pub fn saturating_since(self, other: Time) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Dur {
        Dur(ns)
    }

    /// Creates a duration from (possibly fractional) seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Dur {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration {secs}");
        Dur((secs * NANOS_PER_SEC).round() as u64)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000_000)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us * 1_000)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: Dur) -> Dur {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns `self - other`, clamping at zero.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Time {
    type Output = Time;
    fn add(self, rhs: Dur) -> Time {
        Time(self.0.checked_add(rhs.0).expect("virtual time overflow"))
    }
}

impl AddAssign<Dur> for Time {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Time> for Time {
    type Output = Dur;
    fn sub(self, rhs: Time) -> Dur {
        Dur(self
            .0
            .checked_sub(rhs.0)
            .expect("subtracted a later instant from an earlier one"))
    }
}

impl Sub<Dur> for Time {
    type Output = Time;
    fn sub(self, rhs: Dur) -> Time {
        Time(
            self.0
                .checked_sub(rhs.0)
                .expect("instant underflow before simulation start"),
        )
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign<Dur> for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        *self = *self + rhs;
    }
}

impl Sub<Dur> for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign<Dur> for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: f64) -> Dur {
        assert!(
            rhs.is_finite() && rhs >= 0.0,
            "invalid duration scale {rhs}"
        );
        Dur((self.0 as f64 * rhs).round() as u64)
    }
}

impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration_round_trips() {
        let t = Time::from_secs_f64(1.5);
        let d = Dur::from_millis(250);
        assert_eq!((t + d).as_secs_f64(), 1.75);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn max_min_pick_correct_instants() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(20);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn saturating_since_clamps_at_zero() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(20);
        assert_eq!(a.saturating_since(b), Dur::ZERO);
        assert_eq!(b.saturating_since(a), Dur::from_nanos(10));
    }

    #[test]
    fn duration_scaling() {
        let d = Dur::from_secs_f64(2.0);
        assert_eq!((d * 0.5).as_secs_f64(), 1.0);
        assert_eq!((d * 3u64).as_secs_f64(), 6.0);
        assert_eq!((d / 4).as_secs_f64(), 0.5);
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn subtracting_later_instant_panics() {
        let a = Time::from_nanos(10);
        let b = Time::from_nanos(20);
        let _ = a - b;
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(Dur::from_secs_f64(1.5).to_string(), "1.500s");
        assert_eq!(Dur::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Dur::from_nanos(42).to_string(), "42ns");
    }
}
