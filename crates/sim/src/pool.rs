//! Byte-granularity capacity accounting for memory/storage tiers.

use std::fmt;

/// An error returned by [`CapacityPool`] operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolError {
    /// The requested allocation does not fit in the remaining capacity.
    Exhausted {
        /// Bytes requested by the failed allocation.
        requested: u64,
        /// Bytes still available in the pool.
        available: u64,
    },
    /// A free would release more bytes than are currently allocated.
    Underflow {
        /// Bytes the caller attempted to release.
        released: u64,
        /// Bytes currently allocated.
        used: u64,
    },
}

impl fmt::Display for PoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PoolError::Exhausted {
                requested,
                available,
            } => write!(
                f,
                "pool exhausted: requested {requested} bytes, {available} available"
            ),
            PoolError::Underflow { released, used } => write!(
                f,
                "pool underflow: released {released} bytes with only {used} in use"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// Tracks byte usage against a fixed capacity (HBM, DRAM or disk tier).
#[derive(Debug, Clone)]
pub struct CapacityPool {
    name: &'static str,
    capacity: u64,
    used: u64,
    high_water: u64,
}

impl CapacityPool {
    /// Creates a pool of `capacity` bytes.
    pub fn new(name: &'static str, capacity: u64) -> Self {
        CapacityPool {
            name,
            capacity,
            used: 0,
            high_water: 0,
        }
    }

    /// Returns the pool's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Returns the total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Returns the bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Returns the bytes still available.
    pub fn available(&self) -> u64 {
        self.capacity - self.used
    }

    /// Returns the maximum bytes ever simultaneously allocated.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Returns `true` when `bytes` more would fit.
    pub fn fits(&self, bytes: u64) -> bool {
        bytes <= self.available()
    }

    /// Allocates `bytes`, failing without side effects if they do not fit.
    pub fn try_alloc(&mut self, bytes: u64) -> Result<(), PoolError> {
        if !self.fits(bytes) {
            return Err(PoolError::Exhausted {
                requested: bytes,
                available: self.available(),
            });
        }
        self.used += bytes;
        if self.used > self.high_water {
            self.high_water = self.used;
        }
        Ok(())
    }

    /// Releases `bytes` back to the pool.
    pub fn free(&mut self, bytes: u64) -> Result<(), PoolError> {
        if bytes > self.used {
            return Err(PoolError::Underflow {
                released: bytes,
                used: self.used,
            });
        }
        self.used -= bytes;
        Ok(())
    }

    /// Returns the fraction of capacity in use, in `[0, 1]`.
    pub fn fill_fraction(&self) -> f64 {
        if self.capacity == 0 {
            return 1.0;
        }
        self.used as f64 / self.capacity as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_round_trip() {
        let mut p = CapacityPool::new("dram", 100);
        p.try_alloc(60).unwrap();
        assert_eq!(p.used(), 60);
        assert_eq!(p.available(), 40);
        p.free(60).unwrap();
        assert_eq!(p.used(), 0);
        assert_eq!(p.high_water(), 60);
    }

    #[test]
    fn over_allocation_fails_without_side_effects() {
        let mut p = CapacityPool::new("dram", 100);
        p.try_alloc(90).unwrap();
        let err = p.try_alloc(20).unwrap_err();
        assert_eq!(
            err,
            PoolError::Exhausted {
                requested: 20,
                available: 10
            }
        );
        assert_eq!(p.used(), 90);
    }

    #[test]
    fn over_free_fails() {
        let mut p = CapacityPool::new("dram", 100);
        p.try_alloc(10).unwrap();
        let err = p.free(20).unwrap_err();
        assert_eq!(
            err,
            PoolError::Underflow {
                released: 20,
                used: 10
            }
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Usage never exceeds capacity and frees restore exactly what
            /// allocations took, across arbitrary operation sequences.
            #[test]
            fn accounting_is_conserved(
                ops in proptest::collection::vec(1u64..5_000, 1..60),
            ) {
                let mut p = CapacityPool::new("t", 50_000);
                let mut live: Vec<u64> = Vec::new();
                for (i, &sz) in ops.iter().enumerate() {
                    if i % 3 == 2 && !live.is_empty() {
                        let sz = live.swap_remove(i % live.len());
                        p.free(sz).unwrap();
                    } else if p.try_alloc(sz).is_ok() {
                        live.push(sz);
                    }
                    prop_assert!(p.used() <= p.capacity());
                    prop_assert_eq!(p.used(), live.iter().sum::<u64>());
                    prop_assert!(p.high_water() >= p.used());
                }
            }
        }
    }

    #[test]
    fn fill_fraction_handles_zero_capacity() {
        let p = CapacityPool::new("empty", 0);
        assert_eq!(p.fill_fraction(), 1.0);
        let mut q = CapacityPool::new("half", 10);
        q.try_alloc(5).unwrap();
        assert_eq!(q.fill_fraction(), 0.5);
    }
}
