//! Stable-order event queue.
//!
//! Events are dispatched in increasing time order; events at the same
//! instant fire in insertion order. The total (time, sequence) key makes
//! simulations deterministic regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// An entry in the queue, ordered by `(at, seq)`.
struct Entry<Ev> {
    at: Time,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Entry<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<Ev> Eq for Entry<Ev> {}

impl<Ev> PartialOrd for Entry<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<Ev> Ord for Entry<Ev> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of timed events with deterministic tie-breaking.
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Reverse<Entry<Ev>>>,
    next_seq: u64,
    pushed_total: u64,
}

impl<Ev> EventQueue<Ev> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Schedules `ev` to fire at instant `at`.
    pub fn push(&mut self, at: Time, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed_total += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Ev)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<&Time> {
        self.heap.peek().map(|Reverse(e)| &e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events ever scheduled.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), "c");
        q.push(Time::from_nanos(10), "a");
        q.push(Time::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..50u32 {
            q.push(t, i);
        }
        for i in 0..50u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Pops come out sorted by (time, insertion order) for any
            /// push sequence.
            #[test]
            fn pops_are_totally_ordered(
                times in proptest::collection::vec(0u64..1_000, 1..80),
            ) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(Time::from_nanos(t), i);
                }
                let mut prev: Option<(Time, usize)> = None;
                while let Some((at, tag)) = q.pop() {
                    if let Some((pt, ptag)) = prev {
                        prop_assert!(at >= pt);
                        if at == pt {
                            prop_assert!(tag > ptag, "insertion order broken");
                        }
                    }
                    prev = Some((at, tag));
                }
            }
        }
    }

    #[test]
    fn counters_track_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed_total(), 2);
    }
}
