//! Stable-order event queue.
//!
//! Events are dispatched in increasing time order; events at the same
//! instant fire in insertion order. The total (time, sequence) key makes
//! simulations deterministic regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::Time;

/// An entry in the queue, ordered by `(at, seq)`.
struct Entry<Ev> {
    at: Time,
    seq: u64,
    ev: Ev,
}

impl<Ev> PartialEq for Entry<Ev> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}

impl<Ev> Eq for Entry<Ev> {}

impl<Ev> PartialOrd for Entry<Ev> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<Ev> Ord for Entry<Ev> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A priority queue of timed events with deterministic tie-breaking.
pub struct EventQueue<Ev> {
    heap: BinaryHeap<Reverse<Entry<Ev>>>,
    next_seq: u64,
    pushed_total: u64,
}

impl<Ev> EventQueue<Ev> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed_total: 0,
        }
    }

    /// Schedules `ev` to fire at instant `at`.
    pub fn push(&mut self, at: Time, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed_total += 1;
        self.heap.push(Reverse(Entry { at, seq, ev }));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, Ev)> {
        self.heap.pop().map(|Reverse(e)| (e.at, e.ev))
    }

    /// Returns the time of the earliest pending event without removing it.
    pub fn peek_time(&self) -> Option<&Time> {
        self.heap.peek().map(|Reverse(e)| &e.at)
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events ever scheduled.
    pub fn pushed_total(&self) -> u64 {
        self.pushed_total
    }
}

impl<Ev> Default for EventQueue<Ev> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Admission ledger for a bounded inbox: a capacity-checked occupancy
/// counter a consumer pairs with its actual queue.
///
/// The idiom (common in game-server subscriber queues) is that the
/// *producer* asks the inbox for a slot before touching the queue —
/// [`try_accept`](BoundedInbox::try_accept) either reserves a slot or
/// reports the overflow — and the consumer returns the slot with
/// [`release`](BoundedInbox::release) when it dequeues. Keeping the bound
/// here rather than inside the queue keeps the policy (what to do on
/// overflow: shed, degrade, backpressure) with the caller while the
/// accounting (occupancy, high-water, accept/reject totals) stays
/// deterministic and auditable.
#[derive(Debug, Clone)]
pub struct BoundedInbox {
    capacity: usize,
    depth: usize,
    high_water: usize,
    accepted: u64,
    rejected: u64,
}

impl BoundedInbox {
    /// Creates an inbox admitting at most `capacity` occupants at once.
    /// A zero capacity rejects everything.
    pub fn new(capacity: usize) -> Self {
        BoundedInbox {
            capacity,
            depth: 0,
            high_water: 0,
            accepted: 0,
            rejected: 0,
        }
    }

    /// Tries to reserve one slot. Returns `true` (and occupies the slot)
    /// when the inbox has room, `false` (counting a rejection) when full.
    pub fn try_accept(&mut self) -> bool {
        if self.depth < self.capacity {
            self.depth += 1;
            self.high_water = self.high_water.max(self.depth);
            self.accepted += 1;
            true
        } else {
            self.rejected += 1;
            false
        }
    }

    /// Occupies one slot unconditionally, allowed to exceed capacity.
    /// For recovery re-queues (crash or scale-down reroutes) that must
    /// never be shed: the overflow is bounded by the dead peer's own
    /// bounded occupancy, so the ledger stays finite.
    pub fn force_accept(&mut self) {
        self.depth += 1;
        self.high_water = self.high_water.max(self.depth);
        self.accepted += 1;
    }

    /// Returns one slot after the paired queue dequeues an occupant.
    ///
    /// # Panics
    ///
    /// Panics if the inbox is already empty — a release without a prior
    /// accept means the caller's queue and this ledger have diverged.
    pub fn release(&mut self) {
        assert!(self.depth > 0, "BoundedInbox::release on an empty inbox");
        self.depth -= 1;
    }

    /// Current occupancy.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Maximum slots this inbox admits at once.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Peak occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total accepts over the inbox's lifetime.
    pub fn accepted(&self) -> u64 {
        self.accepted
    }

    /// Total rejections over the inbox's lifetime.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Whether the next [`try_accept`](BoundedInbox::try_accept) would
    /// reject.
    pub fn is_full(&self) -> bool {
        self.depth >= self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Time::from_nanos(30), "c");
        q.push(Time::from_nanos(10), "a");
        q.push(Time::from_nanos(20), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = Time::from_nanos(5);
        for i in 0..50u32 {
            q.push(t, i);
        }
        for i in 0..50u32 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Pops come out sorted by (time, insertion order) for any
            /// push sequence.
            #[test]
            fn pops_are_totally_ordered(
                times in proptest::collection::vec(0u64..1_000, 1..80),
            ) {
                let mut q = EventQueue::new();
                for (i, &t) in times.iter().enumerate() {
                    q.push(Time::from_nanos(t), i);
                }
                let mut prev: Option<(Time, usize)> = None;
                while let Some((at, tag)) = q.pop() {
                    if let Some((pt, ptag)) = prev {
                        prop_assert!(at >= pt);
                        if at == pt {
                            prop_assert!(tag > ptag, "insertion order broken");
                        }
                    }
                    prev = Some((at, tag));
                }
            }
        }
    }

    #[test]
    fn bounded_inbox_sheds_at_capacity_and_recovers() {
        let mut inbox = BoundedInbox::new(2);
        assert!(!inbox.is_full());
        assert!(inbox.try_accept());
        assert!(inbox.try_accept());
        assert!(inbox.is_full());
        assert!(!inbox.try_accept());
        assert_eq!(inbox.depth(), 2);
        assert_eq!(inbox.high_water(), 2);
        assert_eq!(inbox.accepted(), 2);
        assert_eq!(inbox.rejected(), 1);
        inbox.release();
        assert!(inbox.try_accept());
        assert_eq!(inbox.high_water(), 2);
        assert_eq!(inbox.accepted(), 3);
    }

    #[test]
    fn force_accept_overflows_capacity_without_rejecting() {
        let mut inbox = BoundedInbox::new(1);
        assert!(inbox.try_accept());
        inbox.force_accept();
        assert_eq!(inbox.depth(), 2);
        assert_eq!(inbox.high_water(), 2);
        assert_eq!(inbox.rejected(), 0);
        assert!(!inbox.try_accept());
        inbox.release();
        inbox.release();
        assert_eq!(inbox.depth(), 0);
    }

    #[test]
    fn zero_capacity_inbox_rejects_everything() {
        let mut inbox = BoundedInbox::new(0);
        assert!(inbox.is_full());
        assert!(!inbox.try_accept());
        assert_eq!(inbox.rejected(), 1);
        assert_eq!(inbox.depth(), 0);
    }

    #[test]
    #[should_panic(expected = "release on an empty inbox")]
    fn empty_inbox_release_panics() {
        BoundedInbox::new(4).release();
    }

    #[test]
    fn counters_track_pushes() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.push(Time::ZERO, ());
        q.push(Time::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.pushed_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.pushed_total(), 2);
    }
}
