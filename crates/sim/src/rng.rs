//! Seeded random source with the distributions the simulator needs.
//!
//! Everything the workload generator and policies draw comes through
//! [`SimRng`], so a single `u64` seed makes an entire experiment
//! reproducible.

use rand::distributions::Distribution;
use rand::{Rng, RngCore, SeedableRng};
use rand_distr::{Exp, LogNormal, Zipf};

/// A deterministic random source for simulations.
pub struct SimRng {
    inner: rand::rngs::StdRng,
}

impl SimRng {
    /// Creates a source from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child source; handy for giving each
    /// subsystem its own stream so adding draws in one does not perturb
    /// another.
    pub fn fork(&mut self) -> SimRng {
        SimRng::seed_from_u64(self.inner.next_u64())
    }

    /// Returns a uniform value in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Returns a uniform index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "cannot pick from an empty set");
        self.inner.gen_range(0..n)
    }

    /// Draws from an exponential distribution with the given mean.
    ///
    /// Used for Poisson inter-arrival gaps and think times.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not strictly positive.
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive, got {mean}");
        Exp::new(1.0 / mean)
            .expect("rate validated above")
            .sample(&mut self.inner)
    }

    /// Draws from a log-normal distribution parameterized by the mean and
    /// standard deviation of the *underlying normal* (`mu`, `sigma`).
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        LogNormal::new(mu, sigma)
            .expect("lognormal parameters must be finite")
            .sample(&mut self.inner)
    }

    /// Draws a rank in `[1, n]` from a Zipf distribution with exponent `s`.
    ///
    /// Used to skew session popularity when modelling hot conversations.
    pub fn zipf(&mut self, n: u64, s: f64) -> u64 {
        Zipf::new(n, s)
            .expect("zipf parameters must be valid")
            .sample(&mut self.inner) as u64
    }

    /// Draws an index from a categorical distribution given unnormalized
    /// weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn categorical(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "categorical needs positive total weight"
        );
        let mut x = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            x -= w;
            if x < 0.0 {
                return i;
            }
        }
        weights.len() - 1
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.f64().to_bits(), b.f64().to_bits());
        }
    }

    #[test]
    fn forked_streams_differ_from_parent() {
        let mut a = SimRng::seed_from_u64(7);
        let mut child = a.fork();
        let xs: Vec<u64> = (0..8).map(|_| (a.f64() * 1e9) as u64).collect();
        let ys: Vec<u64> = (0..8).map(|_| (child.f64() * 1e9) as u64).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn exponential_mean_is_approximately_right() {
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exp(3.0)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean was {mean}");
    }

    #[test]
    fn categorical_respects_weights() {
        let mut rng = SimRng::seed_from_u64(1);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[rng.categorical(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio was {ratio}");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut head = 0u32;
        let n = 10_000;
        for _ in 0..n {
            if rng.zipf(1_000, 1.1) <= 10 {
                head += 1;
            }
        }
        // The top 1% of ranks should absorb far more than 1% of draws.
        assert!(head as f64 / n as f64 > 0.3, "head fraction {head}/{n}");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from_u64(3);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
    }
}
