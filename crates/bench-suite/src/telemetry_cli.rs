//! `--trace-out` / `--metrics-out` support for the experiment binaries.
//!
//! Any experiment binary can accept:
//!
//! - `--trace-out PATH` (repeatable): dump the merged engine/store event
//!   trace of the telemetry run. `.jsonl` paths get JSON Lines (one
//!   self-describing object per event); any other extension gets the
//!   Chrome trace-event format, which Perfetto and `chrome://tracing`
//!   open directly.
//! - `--metrics-out PATH`: write the aggregated [`MetricsSnapshot`] as
//!   pretty-printed JSON.
//!
//! Telemetry is strictly read-only, so the returned [`RunReport`] is
//! identical whether or not any flag is given.

use std::path::{Path, PathBuf};

use engine::{run_trace, EngineConfig, RunReport};
use telemetry::{run_with_telemetry, to_chrome_trace, to_jsonl, MetricsSnapshot};
use workload::Trace;

/// Parsed `--trace-out` / `--metrics-out` flags.
#[derive(Debug, Clone, Default)]
pub struct TelemetryArgs {
    /// Trace destinations (`.jsonl` → JSON Lines, else Chrome trace).
    pub trace_outs: Vec<PathBuf>,
    /// Metrics-snapshot destination.
    pub metrics_out: Option<PathBuf>,
}

impl TelemetryArgs {
    /// Parses the flags from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut out = TelemetryArgs::default();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--trace-out" => {
                    if let Some(p) = args.get(i + 1) {
                        out.trace_outs.push(PathBuf::from(p));
                        i += 1;
                    }
                }
                "--metrics-out" => {
                    if let Some(p) = args.get(i + 1) {
                        out.metrics_out = Some(PathBuf::from(p));
                        i += 1;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        out
    }

    /// Whether any telemetry output was requested.
    pub fn any(&self) -> bool {
        !self.trace_outs.is_empty() || self.metrics_out.is_some()
    }

    /// Runs `cfg` over `trace`, attaching the telemetry stack and
    /// writing the requested outputs when any flag was given, or running
    /// plain (zero observation cost) otherwise. Either way the report is
    /// byte-identical.
    pub fn run(&self, cfg: EngineConfig, trace: Trace) -> RunReport {
        if !self.any() {
            return run_trace(cfg, trace);
        }
        let (report, tel) = run_with_telemetry(cfg, trace);
        for path in &self.trace_outs {
            let body = if is_jsonl(path) {
                to_jsonl(tel.records())
            } else {
                to_chrome_trace(tel.records())
            };
            write_out(path, &body);
            eprintln!(
                "[telemetry] wrote {} ({} events)",
                path.display(),
                tel.records().len()
            );
        }
        if let Some(path) = &self.metrics_out {
            write_snapshot(path, &tel.snapshot());
        }
        report
    }
}

fn is_jsonl(path: &Path) -> bool {
    path.extension().is_some_and(|e| e == "jsonl")
}

fn write_out(path: &Path, body: &str) {
    std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Writes a [`MetricsSnapshot`] as pretty-printed JSON.
pub fn write_snapshot(path: &Path, snap: &MetricsSnapshot) {
    let body = serde_json::to_string_pretty(snap).expect("snapshot always serializes");
    write_out(path, &body);
    eprintln!("[telemetry] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_dispatch_is_by_extension() {
        assert!(is_jsonl(Path::new("trace.jsonl")));
        assert!(!is_jsonl(Path::new("trace.json")));
        assert!(!is_jsonl(Path::new("trace")));
    }

    #[test]
    fn default_args_are_inert() {
        let args = TelemetryArgs::default();
        assert!(!args.any());
    }
}
