//! The continuous perf-regression harness behind `exp_profile`.
//!
//! A bench profile is a deterministic fingerprint of serving latency:
//! the 13 canonical scenarios (CA/RE/OF × DramDisk/HbmDram/HbmOnly
//! placements plus the four CA ablations — the same matrix the golden
//! report fixtures pin) each run under full telemetry, fold into a
//! [`SpanForest`], and contribute one row of TTFT percentiles, stage
//! means, overlap efficiency and hit rate. Because the simulator is
//! virtual-time deterministic, a regenerated profile only moves when
//! serving behavior moves — so `ci.sh` diffs a fresh profile against
//! the checked-in `BENCH_profile.json` with tolerance bands and fails
//! the gate on regression:
//!
//! - latency-like fields fail when `new > base * (1 + tol)`,
//! - quality-like fields (overlap efficiency, hit rate) fail when
//!   `new < base * (1 - tol)`,
//! - turn counts and the schema version must match exactly (a mismatch
//!   means the workload or format changed — regenerate the baseline
//!   with `REGEN_BENCH=1 ./ci.sh`).

use engine::{EngineConfig, Medium, Mode};
use models::ModelSpec;
use serde::{Serialize, Value};
use telemetry::{run_with_telemetry, SpanForest};
use workload::{Generator, ShareGptProfile};

/// Version of the `BENCH_profile.json` layout. Bump when fields are
/// added, removed or renamed; the compare step refuses cross-schema
/// diffs.
pub const SCHEMA: u64 = 1;

/// Default fractional tolerance band for the latency/quality checks.
pub const DEFAULT_TOLERANCE: f64 = 0.05;

/// Absolute slack added to every band so zero-valued baselines (e.g. a
/// stall mean of exactly 0) don't fail on float noise.
const EPSILON: f64 = 1e-6;

/// Per-scenario fields where larger values are regressions.
const LOWER_IS_BETTER: &[&str] = &[
    "ttft_p50_secs",
    "ttft_p95_secs",
    "ttft_p99_secs",
    "queue_wait_p99_secs",
    "fetch_stall_mean_secs",
    "prefill_compute_mean_secs",
    "decode_mean_secs",
];

/// Per-scenario fields where smaller values are regressions.
const HIGHER_IS_BETTER: &[&str] = &["overlap_efficiency", "hit_rate"];

/// One scenario's latency fingerprint.
#[derive(Debug, Clone, Serialize)]
pub struct ScenarioProfile {
    /// Scenario name (matches the golden fixture of the same name).
    pub name: String,
    /// Measured turns — must match the baseline exactly.
    pub turns: u64,
    /// Span well-formedness violations — must be zero.
    pub violations: u64,
    /// Median service TTFT (admission → first token), seconds. `None`
    /// (serialized `null`) when the scenario produced no samples; the
    /// compare step treats null-in-both as absent and a presence flip
    /// as a failure.
    pub ttft_p50_secs: Option<f64>,
    /// p95 service TTFT, seconds (`None` when no samples).
    pub ttft_p95_secs: Option<f64>,
    /// p99 service TTFT, seconds (`None` when no samples).
    pub ttft_p99_secs: Option<f64>,
    /// p99 queue wait, seconds (`None` when no samples).
    pub queue_wait_p99_secs: Option<f64>,
    /// Mean visible KV fetch stall inside prefill, seconds.
    pub fetch_stall_mean_secs: f64,
    /// Mean pure prefill compute, seconds.
    pub prefill_compute_mean_secs: f64,
    /// Mean decode duration, seconds.
    pub decode_mean_secs: f64,
    /// Σ hidden / Σ load — the §3.2.1 overlap observable.
    pub overlap_efficiency: f64,
    /// Store hit rate over all consults.
    pub hit_rate: f64,
}

/// The full fingerprint: schema version + one row per scenario.
#[derive(Debug, Clone, Serialize)]
pub struct BenchProfile {
    /// Layout version ([`SCHEMA`]).
    pub schema: u64,
    /// One row per canonical scenario, in matrix order.
    pub scenarios: Vec<ScenarioProfile>,
}

/// The canonical scenario matrix: every mode × placement medium under
/// the goldens' pressured store, plus the four CachedAttention
/// ablations. Names match `tests/golden/*.json`.
pub fn golden_scenarios() -> Vec<(String, EngineConfig)> {
    const MODES: [Mode; 3] = [
        Mode::CachedAttention,
        Mode::Recompute,
        Mode::CoupledOverflow,
    ];
    const MEDIUMS: [(Medium, &str); 3] = [
        (Medium::DramDisk, "dramdisk"),
        (Medium::HbmDram, "hbmdram"),
        (Medium::HbmOnly, "hbmonly"),
    ];
    fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
        let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
        cfg.medium = medium;
        cfg.store.set_dram_bytes(8_000_000_000);
        cfg.store.set_disk_bytes(40_000_000_000);
        cfg
    }
    let mut out = Vec::new();
    for mode in MODES {
        for (medium, label) in MEDIUMS {
            let name = format!("{}_{}", mode.label().to_lowercase(), label);
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_dramdisk_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_dramdisk_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_dramdisk_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_dramdisk_no_async_save".into(), no_as));
    out
}

/// Runs one scenario traced and folds it into a profile row.
pub fn profile_scenario(name: &str, cfg: EngineConfig) -> ScenarioProfile {
    let trace = Generator::new(ShareGptProfile::default(), 7).trace(20);
    let (report, tel) = run_with_telemetry(cfg, trace);
    let forest = SpanForest::from_records(tel.records());
    let sum = forest.summary();
    ScenarioProfile {
        name: name.to_string(),
        turns: sum.turns,
        violations: sum.violations,
        ttft_p50_secs: sum.ttft_p50_secs,
        ttft_p95_secs: sum.ttft_p95_secs,
        ttft_p99_secs: sum.ttft_p99_secs,
        queue_wait_p99_secs: sum.queue_wait_p99_secs,
        fetch_stall_mean_secs: sum.fetch_stall_mean_secs,
        prefill_compute_mean_secs: sum.prefill_compute_mean_secs,
        decode_mean_secs: sum.decode_mean_secs,
        overlap_efficiency: sum.overlap_efficiency,
        hit_rate: report.hit_rate(),
    }
}

/// Runs the whole canonical matrix.
pub fn collect_profile() -> BenchProfile {
    BenchProfile {
        schema: SCHEMA,
        scenarios: golden_scenarios()
            .into_iter()
            .map(|(name, cfg)| profile_scenario(&name, cfg))
            .collect(),
    }
}

/// Renders the profile as the human-readable table `exp_profile`
/// prints.
pub fn render_table(profile: &BenchProfile) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<26} {:>6} {:>9} {:>9} {:>9} {:>9} {:>8} {:>8}\n",
        "scenario", "turns", "ttft_p50", "ttft_p95", "ttft_p99", "stall_mu", "overlap", "hit_rate"
    ));
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:>8.3}s"),
        None => format!("{:>9}", "-"),
    };
    for s in &profile.scenarios {
        out.push_str(&format!(
            "{:<26} {:>6} {} {} {} {:>8.3}s {:>8.3} {:>8.3}\n",
            s.name,
            s.turns,
            opt(s.ttft_p50_secs),
            opt(s.ttft_p95_secs),
            opt(s.ttft_p99_secs),
            s.fetch_stall_mean_secs,
            s.overlap_efficiency,
            s.hit_rate,
        ));
    }
    out
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// Reads a banded field off a scenario row, distinguishing "absent"
/// (an explicit `null` — the scenario had no samples) from malformed.
fn band_value(row: &Value, field: &str) -> Result<Option<f64>, String> {
    match row.get(field) {
        None => Err(format!("field `{field}` missing")),
        Some(Value::Null) => Ok(None),
        Some(v) => num(v)
            .map(Some)
            .ok_or_else(|| format!("field `{field}` non-numeric")),
    }
}

fn scenario_rows(profile: &Value) -> Vec<(String, Value)> {
    let Some(Value::Array(rows)) = profile.get("scenarios") else {
        return Vec::new();
    };
    rows.iter()
        .filter_map(|row| {
            let Some(Value::Str(name)) = row.get("name") else {
                return None;
            };
            Some((name.clone(), row.clone()))
        })
        .collect()
}

/// Diffs `current` against `baseline` (both serialized profiles) and
/// returns every regression found — empty means the gate passes.
///
/// Latency fields regress when `new > base * (1 + tolerance)`, quality
/// fields when `new < base * (1 - tolerance)`; both bands get a small
/// absolute epsilon so exactly-zero baselines compare cleanly. Scenario
/// sets, turn counts and the schema version must match exactly.
pub fn compare(baseline: &Value, current: &Value, tolerance: f64) -> Vec<String> {
    let mut fails = Vec::new();
    let base_schema = baseline.get("schema").and_then(num);
    let cur_schema = current.get("schema").and_then(num);
    if base_schema != cur_schema || base_schema != Some(SCHEMA as f64) {
        fails.push(format!(
            "schema mismatch: baseline {:?} vs current {:?} (expected {SCHEMA}); \
             regenerate with REGEN_BENCH=1 ./ci.sh",
            base_schema, cur_schema
        ));
        return fails;
    }

    let base_rows = scenario_rows(baseline);
    let cur_rows = scenario_rows(current);
    for (name, base) in &base_rows {
        let Some((_, cur)) = cur_rows.iter().find(|(n, _)| n == name) else {
            fails.push(format!(
                "scenario `{name}` present in baseline but missing from current profile; \
                 regenerate with REGEN_BENCH=1 ./ci.sh"
            ));
            continue;
        };
        for field in ["turns", "violations"] {
            let b = base.get(field).and_then(num);
            let c = cur.get(field).and_then(num);
            if b != c {
                fails.push(format!(
                    "{name}: {field} changed {b:?} -> {c:?} (must match exactly; \
                     regenerate with REGEN_BENCH=1 ./ci.sh if intended)"
                ));
            }
        }
        // A `null` (no samples) in BOTH profiles is fine — the field is
        // simply absent for that scenario. A presence flip means the
        // scenario started or stopped producing samples, which is a
        // behavior change and fails like any other mismatch.
        for field in LOWER_IS_BETTER {
            let (b, c) = match (band_value(base, field), band_value(cur, field)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => {
                    fails.push(format!("{name}: {e}"));
                    continue;
                }
            };
            match (b, c) {
                (None, None) => {}
                (Some(b), Some(c)) => {
                    if c > b * (1.0 + tolerance) + EPSILON {
                        fails.push(format!(
                            "{name}: {field} regressed {b:.6} -> {c:.6} (+{:.1}% > {:.1}% band)",
                            (c - b) / b.max(EPSILON) * 100.0,
                            tolerance * 100.0
                        ));
                    }
                }
                (b, c) => fails.push(format!(
                    "{name}: {field} presence changed {b:?} -> {c:?} (null means no samples; \
                     regenerate with REGEN_BENCH=1 ./ci.sh if intended)"
                )),
            }
        }
        for field in HIGHER_IS_BETTER {
            let (b, c) = match (band_value(base, field), band_value(cur, field)) {
                (Ok(b), Ok(c)) => (b, c),
                (Err(e), _) | (_, Err(e)) => {
                    fails.push(format!("{name}: {e}"));
                    continue;
                }
            };
            match (b, c) {
                (None, None) => {}
                (Some(b), Some(c)) => {
                    if c < b * (1.0 - tolerance) - EPSILON {
                        fails.push(format!(
                            "{name}: {field} regressed {b:.6} -> {c:.6} (-{:.1}% > {:.1}% band)",
                            (b - c) / b.max(EPSILON) * 100.0,
                            tolerance * 100.0
                        ));
                    }
                }
                (b, c) => fails.push(format!(
                    "{name}: {field} presence changed {b:?} -> {c:?} (null means no samples; \
                     regenerate with REGEN_BENCH=1 ./ci.sh if intended)"
                )),
            }
        }
    }
    for (name, _) in &cur_rows {
        if !base_rows.iter().any(|(n, _)| n == name) {
            fails.push(format!(
                "scenario `{name}` is new (not in baseline); \
                 regenerate with REGEN_BENCH=1 ./ci.sh"
            ));
        }
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-scenario profile as a serialized Value.
    fn sample() -> Value {
        BenchProfile {
            schema: SCHEMA,
            scenarios: vec![
                ScenarioProfile {
                    name: "ca_dramdisk".into(),
                    turns: 100,
                    violations: 0,
                    ttft_p50_secs: Some(1.0),
                    ttft_p95_secs: Some(2.0),
                    ttft_p99_secs: Some(3.0),
                    queue_wait_p99_secs: Some(0.5),
                    fetch_stall_mean_secs: 0.1,
                    prefill_compute_mean_secs: 0.4,
                    decode_mean_secs: 5.0,
                    overlap_efficiency: 0.8,
                    hit_rate: 0.9,
                },
                ScenarioProfile {
                    name: "re_dramdisk".into(),
                    turns: 100,
                    violations: 0,
                    ttft_p50_secs: Some(2.0),
                    ttft_p95_secs: Some(4.0),
                    ttft_p99_secs: Some(6.0),
                    queue_wait_p99_secs: Some(1.0),
                    fetch_stall_mean_secs: 0.0,
                    prefill_compute_mean_secs: 0.9,
                    decode_mean_secs: 5.0,
                    overlap_efficiency: 0.0,
                    hit_rate: 0.0,
                },
            ],
        }
        .to_value()
    }

    #[test]
    fn identical_profiles_pass() {
        assert!(compare(&sample(), &sample(), DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn drift_inside_the_band_passes() {
        let mut cur = sample();
        bump(&mut cur, "ca_dramdisk", "ttft_p99_secs", 3.06); // +2%
        assert!(compare(&sample(), &cur, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn synthetic_twenty_percent_ttft_regression_fails() {
        let mut cur = sample();
        bump(&mut cur, "ca_dramdisk", "ttft_p99_secs", 3.6); // +20%
        let fails = compare(&sample(), &cur, DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("ttft_p99_secs regressed"));
    }

    #[test]
    fn overlap_efficiency_loss_fails() {
        let mut cur = sample();
        bump(&mut cur, "ca_dramdisk", "overlap_efficiency", 0.5);
        let fails = compare(&sample(), &cur, DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("overlap_efficiency regressed"));
    }

    #[test]
    fn zero_baselines_tolerate_exact_zero() {
        // re_dramdisk has stall = 0 and overlap = 0; identical zeros
        // must not trip the relative bands.
        assert!(compare(&sample(), &sample(), 0.0).is_empty());
    }

    #[test]
    fn null_in_both_profiles_is_absent_not_a_failure() {
        let mut base = sample();
        let mut cur = sample();
        nullify(&mut base, "ca_dramdisk", "queue_wait_p99_secs");
        nullify(&mut cur, "ca_dramdisk", "queue_wait_p99_secs");
        assert!(compare(&base, &cur, DEFAULT_TOLERANCE).is_empty());
    }

    #[test]
    fn percentile_presence_flip_fails() {
        let mut cur = sample();
        nullify(&mut cur, "ca_dramdisk", "ttft_p99_secs");
        let fails = compare(&sample(), &cur, DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("presence changed"));
    }

    #[test]
    fn schema_mismatch_fails_with_regen_hint() {
        let mut cur = sample();
        if let Value::Object(pairs) = &mut cur {
            for (k, v) in pairs.iter_mut() {
                if k == "schema" {
                    *v = Value::U64(99);
                }
            }
        }
        let fails = compare(&sample(), &cur, DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("REGEN_BENCH=1"));
    }

    #[test]
    fn missing_and_extra_scenarios_fail() {
        let mut cur = sample();
        if let Value::Object(pairs) = &mut cur {
            for (k, v) in pairs.iter_mut() {
                if k == "scenarios" {
                    if let Value::Array(rows) = v {
                        rows.remove(1);
                    }
                }
            }
        }
        let fails = compare(&sample(), &cur, DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("re_dramdisk"));
        // And the reverse direction: baseline missing a current row.
        let fails = compare(&cur, &sample(), DEFAULT_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("new (not in baseline)"));
    }

    #[test]
    fn canonical_matrix_has_thirteen_scenarios() {
        let names: Vec<String> = golden_scenarios().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names.len(), 13);
        assert!(names.contains(&"ca_dramdisk".to_string()));
        assert!(names.contains(&"of_hbmonly".to_string()));
        assert!(names.contains(&"ca_dramdisk_no_async_save".to_string()));
    }

    fn nullify(profile: &mut Value, scenario: &str, field: &str) {
        set_field(profile, scenario, field, Value::Null);
    }

    fn bump(profile: &mut Value, scenario: &str, field: &str, to: f64) {
        set_field(profile, scenario, field, Value::F64(to));
    }

    fn set_field(profile: &mut Value, scenario: &str, field: &str, to: Value) {
        let Value::Object(pairs) = profile else {
            panic!("profile must be an object")
        };
        for (k, v) in pairs.iter_mut() {
            if k != "scenarios" {
                continue;
            }
            let Value::Array(rows) = v else {
                panic!("scenarios must be an array")
            };
            for row in rows {
                let Value::Object(fields) = row else {
                    panic!("row must be an object")
                };
                let is_target = fields
                    .iter()
                    .any(|(k, v)| k == "name" && matches!(v, Value::Str(s) if s == scenario));
                if !is_target {
                    continue;
                }
                for (k, v) in fields.iter_mut() {
                    if k == field {
                        *v = to.clone();
                    }
                }
            }
        }
    }
}
