//! Figure 4: recomputation inefficiencies across conversation turns.

use bench_suite::Scale;

fn main() {
    let scale = Scale::from_args();
    println!(
        "{}",
        bench_suite::experiments::fig04::run(scale.sessions.max(3_000))
    );
}
