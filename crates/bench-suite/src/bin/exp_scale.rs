//! Host-time throughput gate: how fast is the simulator itself?
//!
//! ```text
//! exp_scale                      # CI bench preset (~4K sessions, seconds)
//!           --full               # acceptance scale: 100K sessions, 8
//!                                # instances, diurnal arrivals (minutes)
//!           --sessions N         # override session count
//!           --instances N        # override instance count
//!           --rate F             # override mean arrival rate (/sec)
//!           --heartbeat F        # stderr progress line every F host secs
//!           --flat               # disable the diurnal arrival wave
//!           --out PATH           # write BENCH_scale.json-style JSON
//!           --baseline PATH      # diff against a committed bench;
//!                                # exit 1 on regression
//!           --tolerance F        # host-field band (default 0.5)
//!           --trace-out PATH     # two-clock Chrome trace: virtual-time
//!                                # serving events next to a host-time
//!                                # self-profile track (keep this small)
//! ```
//!
//! Unlike every other experiment, the interesting output here is
//! host-clock: events dispatched per wall second, total wall time, peak
//! RSS, and the per-scope self-profile saying where the host time went.
//! The virtual fields (event count, makespan, hit rate) ride along as a
//! determinism fingerprint the baseline compare pins exactly.

use bench_suite::experiments::scale::{
    compare_scale, render, run_scale, scale_config, scale_trace, to_bench, ScaleOpts, ScaleRun,
    DEFAULT_HOST_TOLERANCE,
};
use serde::{Serialize, Value};
use sim::{profiler, ProfilerConfig};
use std::path::PathBuf;
use telemetry::{run_cluster_with_telemetry, to_chrome_trace_two_clock};

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(flag: &str) -> bool {
    std::env::args().any(|a| a == flag)
}

fn main() {
    let mut opts = if has_flag("--full") {
        ScaleOpts::full()
    } else {
        ScaleOpts::bench()
    };
    if let Some(n) = arg_value("--sessions").and_then(|s| s.parse().ok()) {
        opts.sessions = n;
    }
    if let Some(n) = arg_value("--instances").and_then(|s| s.parse().ok()) {
        opts.instances = n;
    }
    if let Some(r) = arg_value("--rate").and_then(|s| s.parse().ok()) {
        opts.arrival_rate = r;
    }
    if let Some(h) = arg_value("--heartbeat").and_then(|s| s.parse().ok()) {
        opts.heartbeat_secs = Some(h);
    }
    if has_flag("--flat") {
        opts.diurnal = None;
    }
    let out = arg_value("--out").map(PathBuf::from);
    let baseline = arg_value("--baseline").map(PathBuf::from);
    let tolerance = arg_value("--tolerance")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_HOST_TOLERANCE);
    let trace_outs: Vec<PathBuf> = {
        let args: Vec<String> = std::env::args().collect();
        args.iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == "--trace-out")
            .filter_map(|(i, _)| args.get(i + 1).map(PathBuf::from))
            .collect()
    };

    let run = if trace_outs.is_empty() {
        run_scale(&opts)
    } else {
        // Two-clock export: the verbatim trace costs memory proportional
        // to the event count, so this path is for smoke-scale runs.
        let trace = scale_trace(&opts);
        let trace_turns = trace.total_turns() as u64;
        profiler::begin(ProfilerConfig {
            heartbeat_secs: opts.heartbeat_secs,
        });
        let (report, tel) = run_cluster_with_telemetry(scale_config(&opts), trace);
        let profile = profiler::finish();
        for path in &trace_outs {
            let body = to_chrome_trace_two_clock(tel.records(), &profile);
            std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
            eprintln!(
                "[exp_scale] wrote {} ({} serving events + {} self-profile scopes)",
                path.display(),
                tel.records().len(),
                profile.scopes.len()
            );
        }
        ScaleRun {
            report,
            profile,
            trace_turns,
        }
    };

    let bench = to_bench(&opts, &run);
    print!("{}", render(&bench));

    if let Some(path) = &out {
        let mut json = serde_json::to_string_pretty(&bench).expect("benches always serialize");
        json.push('\n');
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("[exp_scale] wrote {}", path.display());
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let base: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
        let fails = compare_scale(&base, &bench.to_value(), tolerance);
        if fails.is_empty() {
            println!(
                "throughput gate: PASS vs {} (host tolerance {:.0}%)",
                path.display(),
                tolerance * 100.0
            );
        } else {
            eprintln!(
                "throughput gate: FAIL vs {} (host tolerance {:.0}%)",
                path.display(),
                tolerance * 100.0
            );
            for f in &fails {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}
