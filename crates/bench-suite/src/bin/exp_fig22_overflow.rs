//! Figure 22: context-overflow impact (CA vs OF).

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::fig22::run(Scale::from_args())
    );
}
