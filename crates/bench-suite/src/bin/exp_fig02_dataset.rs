//! Figure 2: ShareGPT dataset statistics vs the synthetic calibration.

use bench_suite::Scale;

fn main() {
    let scale = Scale::from_args();
    println!(
        "{}",
        bench_suite::experiments::fig02::run(scale.sessions.max(5_000))
    );
}
