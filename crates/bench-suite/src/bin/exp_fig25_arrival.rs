//! Figure 25: impact of session arrival rates.

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::fig25::run(Scale::from_args())
    );
}
