//! Table 1: perplexity of CA / TT / NKVT on trained tiny RoPE LMs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (steps, episodes) = if quick { (700, 8) } else { (2_000, 24) };
    println!(
        "{}",
        bench_suite::experiments::tab12::table1(steps, episodes)
    );
}
