//! Chaos runs: fault injection and graceful degradation on a cluster.
//!
//! Two modes:
//!
//! ```text
//! exp_chaos [--sessions N | --paper]
//!     # sweep: fault intensity {0, 0.25, 0.5, 1.0} on a 2-instance
//!     # cluster, one table of TTFT / hit rate / fault-path counters
//!
//! exp_chaos [--sessions N | --paper] --intensity K
//!           [--instances M]          # default 2
//!           [--seed S]               # fault-dice seed, default 20240418
//!           [--trace-out PATH]...    # .jsonl => JSON Lines, else Chrome trace
//!           [--metrics-out PATH]     # MetricsSnapshot as pretty JSON
//!     # single faulted run with the full telemetry stack: every retry,
//!     # corruption, reroute and the crash shows up on the Perfetto
//!     # timeline in its instance's process track
//! ```

use bench_suite::experiments::chaos;
use bench_suite::{paper_trace, scaled_config, Scale, TelemetryArgs, DEFAULT_SEED};
use engine::{ClusterConfig, Mode, RouterKind};
use models::ModelSpec;
use telemetry::{run_cluster_with_telemetry, to_chrome_trace, to_jsonl};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let intensity = flag_value("--intensity").and_then(|s| s.parse::<f64>().ok());

    let Some(k) = intensity else {
        // Sweep mode: healthy baseline plus three escalating fault mixes.
        print!("{}", chaos::run(scale, &[0.0, 0.25, 0.5, 1.0]));
        return;
    };

    // Single-run mode with full telemetry.
    let n = flag_value("--instances")
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(2);
    let seed = flag_value("--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SEED);
    let outs = TelemetryArgs::from_args();
    let model = ModelSpec::llama2_13b();
    let cfg = scaled_config(Mode::CachedAttention, model, scale);
    let trace = paper_trace(scale, 1.0);
    let cluster = ClusterConfig::new(cfg, n, RouterKind::SessionAffinity)
        .with_faults(chaos::chaos_plan(seed, k));
    let (report, tel) = run_cluster_with_telemetry(cluster, trace);

    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(tel.records())
        } else {
            to_chrome_trace(tel.records())
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_chaos] wrote {} ({} events)",
            path.display(),
            tel.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &tel.snapshot());
    }

    let f = &report.faults;
    println!(
        "exp_chaos: intensity {:.2} (seed {}) on {} instances, {} sessions",
        k, seed, n, scale.sessions
    );
    println!(
        "  makespan={:.1}s ttft={:.1}ms hit_rate={:.3} sessions_done={}",
        report.aggregate.makespan_secs,
        report.aggregate.ttft_mean() * 1e3,
        report.aggregate.hit_rate(),
        report.aggregate.sessions_done.get()
    );
    println!(
        "  retries r/w={}/{} failures r/w={}/{} corruptions={} recompute_fallbacks={}",
        f.read_retries,
        f.write_retries,
        f.read_failures,
        f.write_failures,
        f.corruptions_detected,
        f.recompute_fallbacks
    );
    println!(
        "  crashes={} rerouted={} pressure_events={}",
        f.instance_crashes, f.turns_rerouted, f.pressure_events
    );
    for inst in &report.instances {
        println!(
            "  instance {}: turns={} hit_rate={:.3}{}",
            inst.instance,
            inst.turns_done,
            inst.hit_rate(),
            if inst.crashed { " (crashed)" } else { "" }
        );
    }
}
