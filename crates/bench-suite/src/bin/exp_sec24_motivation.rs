//! Section 2.4's motivation anchors.

fn main() {
    println!("{}", bench_suite::experiments::sec24::run());
}
