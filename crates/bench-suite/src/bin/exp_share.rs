//! Prefix-sharing sweep: per-session vs. content-addressed keying.
//!
//! Two modes:
//!
//! ```text
//! exp_share [--sessions N | --paper] [--smoke]
//!     # sweep: three sharing shapes (fleet system prompts, agentic
//!     # fan-out, Zipf-hot RAG documents), each run under per-session
//!     # and content-addressed keying at identical tier capacity; one
//!     # table of fast-tier hit rate, TTFT p50/p95, dedup ratio, bytes
//!     # saved and effective capacity factor. --smoke shrinks the run
//!     # for CI.
//!
//! exp_share [--sessions N | --paper] --scenario system_prompt|agentic_fanout|rag_documents
//!           [--keying per_session|content_addressed]   # default content_addressed
//!           [--trace-out PATH]...    # .jsonl => JSON Lines, else Chrome trace
//!           [--metrics-out PATH]     # MetricsSnapshot as pretty JSON
//!     # single run of one (scenario, keying) cell with the full
//!     # telemetry stack: block_saved / block_dedup_hit / block_diverged
//!     # events land in the trace for `trace_check --jsonl` to validate
//! ```

use bench_suite::experiments::share;
use bench_suite::{Scale, TelemetryArgs};
use store::KeyingMode;
use telemetry::{to_chrome_trace, to_jsonl};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let scale = if has_flag("--smoke") {
        Scale {
            sessions: 40,
            warmup_turns: 0,
        }
    } else {
        Scale::from_args()
    };

    let Some(which) = flag_value("--scenario") else {
        // Sweep mode: every (scenario, keying) cell through one table.
        print!("{}", share::run(scale));
        return;
    };

    // Single-run mode with full telemetry.
    let Some(case) = share::share_cases().into_iter().find(|c| c.label == which) else {
        eprintln!(
            "error: unknown scenario '{which}' (system_prompt | agentic_fanout | rag_documents)"
        );
        std::process::exit(1);
    };
    let keying = match flag_value("--keying").as_deref() {
        None | Some("content_addressed") => KeyingMode::ContentAddressed,
        Some("per_session") => KeyingMode::PerSession,
        Some(other) => {
            eprintln!("error: unknown keying '{other}' (per_session | content_addressed)");
            std::process::exit(1);
        }
    };
    let outs = TelemetryArgs::from_args();

    let (report, tel) = share::run_one(case.scenario, keying, scale);

    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(tel.records())
        } else {
            to_chrome_trace(tel.records())
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_share] wrote {} ({} events)",
            path.display(),
            tel.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &tel.snapshot());
    }

    let snap = tel.snapshot();
    let lookups = snap.hits_fast + snap.hits_slow + snap.misses;
    println!(
        "exp_share: scenario '{}' under {} keying ({} sessions)",
        case.label,
        keying.label(),
        scale.sessions
    );
    println!(
        "  makespan={:.1}s ttft p50/p95={:.1}/{:.1}ms fast_hit_rate={:.3} sessions_done={}",
        report.aggregate.makespan_secs,
        snap.ttft_p50_secs.unwrap_or(0.0) * 1e3,
        snap.ttft_p95_secs.unwrap_or(0.0) * 1e3,
        if lookups == 0 {
            0.0
        } else {
            snap.hits_fast as f64 / lookups as f64
        },
        report.aggregate.sessions_done.get()
    );
    println!(
        "  dedup: ratio={:.3} hits={} matched_blocks={} saved={:.2}GB written={:.2}GB capacity_x={:.2}",
        report.dedup.dedup_ratio(),
        report.dedup.lookup_hits,
        report.dedup.matched_blocks,
        report.dedup.bytes_saved as f64 / 1e9,
        report.dedup.bytes_written as f64 / 1e9,
        report.dedup.effective_capacity_factor()
    );
    println!(
        "  blocks: divergences={} refcounted_evictions={} session_releases={}",
        report.dedup.divergences, report.dedup.refcounted_evictions, report.dedup.session_releases
    );
}
