//! Tier-stack sweep: depth-N storage mixes priced against TTFT.
//!
//! Two modes:
//!
//! ```text
//! exp_tiers [--sessions N | --paper] [--healthy]
//!     # sweep: the paper 2-tier baseline, +pooled-memory, a four-deep
//!     # +object-store stack, and a lean DRAM split, each run through
//!     # the same workload and (unless --healthy) the same mild fault
//!     # schedule; one table of per-tier hit rate, TTFT p50/p95 and
//!     # $-per-session-hour
//!
//! exp_tiers [--sessions N | --paper] --stack paper|pooled|object|lean
//!           [--healthy]              # drop the fault schedule
//!           [--seed S]               # fault-dice seed, default 20240418
//!           [--trace-out PATH]...    # .jsonl => JSON Lines, else Chrome trace
//!           [--metrics-out PATH]     # MetricsSnapshot as pretty JSON
//!     # single run of one candidate stack with the full telemetry
//!     # stack: per-tier occupancy tracks and hop-by-hop transfers show
//!     # up on the Perfetto timeline
//! ```

use bench_suite::experiments::tiers;
use bench_suite::{paper_trace, scaled_config, Scale, TelemetryArgs, DEFAULT_SEED};
use engine::{ClusterConfig, Mode, RouterKind};
use models::ModelSpec;
use telemetry::{run_cluster_with_telemetry, to_chrome_trace, to_jsonl};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn has_flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let scale = Scale::from_args();
    let faulted = !has_flag("--healthy");

    let Some(which) = flag_value("--stack") else {
        // Sweep mode: every candidate stack through one table.
        print!("{}", tiers::render(&tiers::compute(scale, faulted)));
        return;
    };

    // Single-run mode with full telemetry.
    let model = ModelSpec::llama2_13b();
    let mut cases = tiers::stack_cases(scale, &model);
    let idx = match which.as_str() {
        "paper" => 0,
        "pooled" => 1,
        "object" => 2,
        "lean" => 3,
        other => {
            eprintln!("error: unknown stack '{other}' (paper | pooled | object | lean)");
            std::process::exit(1);
        }
    };
    let case = cases.swap_remove(idx);
    let seed = flag_value("--seed")
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(DEFAULT_SEED);
    let outs = TelemetryArgs::from_args();

    let mut cfg = scaled_config(Mode::CachedAttention, model, scale);
    cfg.store.tiers = case.tiers.clone();
    cfg.cluster.tiers = case.tiers.clone();
    let trace = paper_trace(scale, 1.0);
    let mut cluster = ClusterConfig::new(cfg, 1, RouterKind::SessionAffinity);
    if faulted {
        cluster = cluster.with_faults(tiers::tier_plan(seed));
    }
    let (report, tel) = run_cluster_with_telemetry(cluster, trace);

    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(tel.records())
        } else {
            to_chrome_trace(tel.records())
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_tiers] wrote {} ({} events)",
            path.display(),
            tel.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &tel.snapshot());
    }

    let snap = tel.snapshot();
    println!(
        "exp_tiers: stack '{}' ({} tiers, {} sessions{})",
        case.label,
        case.tiers.len(),
        scale.sessions,
        if faulted { ", faulted" } else { "" }
    );
    println!(
        "  makespan={:.1}s ttft p50/p95={:.1}/{:.1}ms hit_rate={:.3} sessions_done={}",
        report.aggregate.makespan_secs,
        snap.ttft_p50_secs.unwrap_or(0.0) * 1e3,
        snap.ttft_p95_secs.unwrap_or(0.0) * 1e3,
        report.aggregate.hit_rate(),
        report.aggregate.sessions_done.get()
    );
    for t in &snap.tiers {
        println!(
            "  tier {} ({}): hits={} peak_occupancy={:.2}GB",
            t.tier,
            t.name,
            t.store_hits,
            t.occupancy_peak_bytes / 1e9
        );
    }
    println!(
        "  storage=${:.4}/h  faults: retries r/w={}/{} failures r/w={}/{}",
        case.tiers.dollars_per_hour(),
        report.faults.read_retries,
        report.faults.write_retries,
        report.faults.read_failures,
        report.faults.write_failures
    );
}
