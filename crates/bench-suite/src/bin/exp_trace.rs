//! Telemetry capture: one end-to-end run with the full observer stack.
//!
//! Runs a single (mode, model) experiment with the merged engine/store
//! event trace attached and writes the requested outputs:
//!
//! ```text
//! exp_trace [--sessions N | --paper] [--mode CA|RE|OF]
//!           [--trace-out PATH]...   # .jsonl => JSON Lines, else Chrome trace
//!           [--metrics-out PATH]    # MetricsSnapshot as pretty JSON
//! ```
//!
//! With no output flags it still runs traced and prints the summary, so
//! it doubles as a quick sanity check that observation is free: the
//! printed hit rate must match `exp_fig13_hitrate` at the same scale.

use bench_suite::{paper_trace, scaled_config, Scale, TelemetryArgs};
use engine::Mode;
use models::ModelSpec;
use telemetry::{run_with_telemetry, to_chrome_trace, to_jsonl};

fn mode_from_args() -> Mode {
    let args: Vec<String> = std::env::args().collect();
    match args
        .iter()
        .position(|a| a == "--mode")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
    {
        Some("RE") => Mode::Recompute,
        Some("OF") => Mode::CoupledOverflow,
        _ => Mode::CachedAttention,
    }
}

fn main() {
    let scale = Scale::from_args();
    let mode = mode_from_args();
    let outs = TelemetryArgs::from_args();
    let model = ModelSpec::llama2_13b();
    let cfg = scaled_config(mode, model, scale);
    let trace = paper_trace(scale, 1.0);

    let (report, tel) = run_with_telemetry(cfg, trace);
    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(tel.records())
        } else {
            to_chrome_trace(tel.records())
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_trace] wrote {} ({} events)",
            path.display(),
            tel.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &tel.snapshot());
    }

    let snap = tel.snapshot();
    println!(
        "exp_trace: {} on Llama2-13B, {} sessions",
        mode.label(),
        scale.sessions
    );
    println!(
        "  events={} (engine+store), turns={}, retired={}",
        tel.records().len(),
        snap.turns_arrived,
        snap.retired
    );
    println!(
        "  report hit_rate={:.3}, hub hit_rate={:.3} (hub counts warmup turns too)",
        report.hit_rate(),
        snap.hit_rate
    );
    println!(
        "  store: dram_hits={} disk_hits={} misses={} saves={} prefetches={}",
        snap.store_hits_dram,
        snap.store_hits_disk,
        snap.store_misses,
        snap.saves,
        snap.prefetch_promotions
    );
    println!(
        "  ttft mean={:.3}s p99={:.3}s, queue wait mean={:.3}s",
        snap.ttft_mean_secs,
        snap.ttft_p99_secs.unwrap_or(0.0),
        snap.queue_wait_mean_secs
    );
}
