//! Extension: chunked prefill vs KV reuse ablation.

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::ext_chunked::run(Scale::from_args())
    );
}
