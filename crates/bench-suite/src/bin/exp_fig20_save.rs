//! Figure 20: asynchronous KV cache saving.

fn main() {
    println!("{}", bench_suite::experiments::fig20::run());
}
