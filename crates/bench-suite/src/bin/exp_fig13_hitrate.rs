//! Figure 13: AttentionStore KV cache hit rates.

use bench_suite::experiments::e2e;
use bench_suite::Scale;

fn main() {
    let r = e2e::compute(Scale::from_args());
    println!("{}", e2e::fig13(&r));
}
