//! Online observability plane on a bursty run: windowed metrics,
//! streaming SLO signals and the deterministic alert timeline.
//!
//! ```text
//! exp_watch [--sessions N | --paper]
//!           [--window-secs W]       # tumbling window width, default 60
//!           [--slo-ttft-p99 S]      # SLO target seconds, default 1.0
//!           [--windows-out PATH]    # windowed-JSONL time series + alerts
//!           [--prom-out PATH]       # Prometheus text exposition (final scrape)
//!           [--trace-out PATH]...   # .jsonl => JSON Lines, else Chrome trace
//!                                   # (alerts render as global instants)
//!           [--metrics-out PATH]    # MetricsSnapshot as pretty JSON
//! ```
//!
//! The run replays the ShareGPT workload under MMPP bursts with the
//! windowed telemetry plane attached and prints the window table, a
//! queue-depth sparkline, and every `alert_fired`/`alert_resolved`
//! transition. Everything is virtual-time deterministic: same flags,
//! same alerts. Validate the windowed JSONL with
//! `trace_check --windows PATH`.

use bench_suite::experiments::watch;
use bench_suite::{Scale, TelemetryArgs};
use telemetry::{
    to_chrome_trace_with_alerts, to_jsonl, to_prometheus, windows_to_jsonl, SloConfig,
};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let window_secs = flag_value("--window-secs")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(watch::DEFAULT_WINDOW_SECS);
    let slo = SloConfig::new(
        flag_value("--slo-ttft-p99")
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0),
    );
    let outs = TelemetryArgs::from_args();

    let run = watch::run_watch(scale, window_secs, slo);

    if let Some(path) = flag_value("--windows-out") {
        let body = windows_to_jsonl(&run.series, &run.signals, &run.alerts);
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!(
            "[exp_watch] wrote {path} ({} windows, {} alert events)",
            run.series.windows.len(),
            run.alerts.len()
        );
    }
    if let Some(path) = flag_value("--prom-out") {
        let body = to_prometheus(&run.telemetry.snapshot());
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[exp_watch] wrote {path}");
    }
    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(run.telemetry.records())
        } else {
            to_chrome_trace_with_alerts(run.telemetry.records(), &run.alerts)
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_watch] wrote {} ({} events)",
            path.display(),
            run.telemetry.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &run.telemetry.snapshot());
    }

    println!(
        "exp_watch: {} sessions (bursty), window {:.0}s",
        scale.sessions, window_secs
    );
    println!(
        "  makespan={:.1}s ttft={:.1}ms hit_rate={:.3} sessions_done={}",
        run.report.makespan_secs,
        run.report.ttft_mean() * 1e3,
        run.report.hit_rate(),
        run.report.sessions_done.get()
    );
    print!("{}", watch::render(&run, 24));
}
