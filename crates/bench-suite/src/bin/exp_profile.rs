//! Span-profile bench: per-turn critical paths for the canonical
//! scenario matrix, plus the perf-regression gate.
//!
//! ```text
//! exp_profile [--out PATH]        # write BENCH_profile.json-style JSON
//!             [--baseline PATH]   # diff against a committed profile;
//!                                 # exit 1 on any regression
//!             [--tolerance F]     # fractional band (default 0.05)
//! ```
//!
//! With no flags it runs the 13 golden scenarios traced, folds each
//! trace into a span forest, and prints the TTFT/stall/overlap table —
//! the quickest way to see CachedAttention's §3.2 overlap (CA DramDisk
//! hides most of its KV transfer; Recompute has nothing to hide).

use bench_suite::profile::{collect_profile, compare, render_table, DEFAULT_TOLERANCE};
use serde::{Serialize, Value};
use std::path::PathBuf;

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let out = arg_value("--out").map(PathBuf::from);
    let baseline = arg_value("--baseline").map(PathBuf::from);
    let tolerance = arg_value("--tolerance")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(DEFAULT_TOLERANCE);

    let profile = collect_profile();
    println!("exp_profile: span profile of the 13 canonical scenarios");
    print!("{}", render_table(&profile));

    if let Some(path) = &out {
        let mut json = serde_json::to_string_pretty(&profile).expect("profiles always serialize");
        json.push('\n');
        std::fs::write(path, json).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("[exp_profile] wrote {}", path.display());
    }

    if let Some(path) = &baseline {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("read baseline {}: {e}", path.display()));
        let base: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("parse baseline {}: {e}", path.display()));
        let fails = compare(&base, &profile.to_value(), tolerance);
        if fails.is_empty() {
            println!(
                "regression gate: PASS vs {} (tolerance {:.0}%)",
                path.display(),
                tolerance * 100.0
            );
        } else {
            eprintln!(
                "regression gate: FAIL vs {} (tolerance {:.0}%)",
                path.display(),
                tolerance * 100.0
            );
            for f in &fails {
                eprintln!("  - {f}");
            }
            std::process::exit(1);
        }
    }
}
