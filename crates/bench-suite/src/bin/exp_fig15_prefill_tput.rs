//! Figure 15: prompt prefilling throughput, CA vs RE.

use bench_suite::experiments::e2e;
use bench_suite::Scale;

fn main() {
    let r = e2e::compute(Scale::from_args());
    println!("{}", e2e::fig15(&r));
}
