//! Extension: KV compression interaction with AttentionStore capacity.

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::ext_compression::run(Scale::from_args())
    );
}
