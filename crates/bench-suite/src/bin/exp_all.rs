//! Runs every experiment and writes `EXPERIMENTS-report.txt`.
//!
//! `--paper` uses the full 9K-session scale (slow); the default quick
//! scale reproduces every shape in minutes.
//!
//! `--trace-out PATH` (repeatable; `.jsonl` => JSON Lines, else Chrome
//! trace for Perfetto) and `--metrics-out PATH` additionally capture the
//! reference CachedAttention run (Llama2-13B at the selected scale) with
//! the full telemetry stack attached.

use bench_suite::experiments::{self, e2e};
use bench_suite::{paper_trace, scaled_config, Scale, TelemetryArgs};
use engine::Mode;
use models::ModelSpec;
use std::fmt::Write as _;

fn main() {
    let scale = Scale::from_args();
    let telemetry = TelemetryArgs::from_args();
    let quick = !std::env::args().any(|a| a == "--paper");
    let (steps, episodes) = if quick { (900, 10) } else { (2_000, 24) };
    let mut out = String::new();
    let mut section = |name: &str, body: String| {
        eprintln!("[exp_all] finished {name}");
        let _ = writeln!(out, "{body}");
    };
    section("sec24", experiments::sec24::run());
    section("fig01", experiments::fig01::run());
    section("fig02", experiments::fig02::run(scale.sessions.max(5_000)));
    section("fig04", experiments::fig04::run(scale.sessions.max(3_000)));
    let r = e2e::compute(scale);
    section("fig13", e2e::fig13(&r));
    section("fig14", e2e::fig14(&r));
    section("fig15", e2e::fig15(&r));
    section("fig16", e2e::fig16(&r));
    section("fig17", e2e::fig17(&r));
    section("fig18", experiments::fig18::run());
    section("fig19", experiments::fig19::run());
    section("fig20", experiments::fig20::run());
    section("fig21", experiments::fig21::run(scale));
    section("fig21-window", experiments::fig21::window_sweep(scale));
    section("fig22", experiments::fig22::run(scale));
    section("tab1", experiments::tab12::table1(steps, episodes));
    section("tab2", experiments::tab12::table2(steps, episodes));
    section("fig23", experiments::fig23::run(scale));
    section("fig24", experiments::fig24::run(scale));
    section("fig25", experiments::fig25::run(scale));
    section(
        "ext-tdl",
        experiments::ext_tdl::run(steps * 6, episodes * 4),
    );
    section("ext-compression", experiments::ext_compression::run(scale));
    section("ext-chunked", experiments::ext_chunked::run(scale));
    section("ext-bursty", experiments::ext_bursty::run(scale));
    if telemetry.any() {
        let model = ModelSpec::llama2_13b();
        let cfg = scaled_config(Mode::CachedAttention, model, scale);
        telemetry.run(cfg, paper_trace(scale, 1.0));
        eprintln!("[exp_all] finished telemetry capture");
    }
    print!("{out}");
    std::fs::write("EXPERIMENTS-report.txt", &out).expect("write report");
    eprintln!("[exp_all] wrote EXPERIMENTS-report.txt");
}
