//! Figure 18: recomputation vs CachedAttention across hist/new splits.

fn main() {
    println!("{}", bench_suite::experiments::fig18::run());
}
