//! Figure 23: cache capacity requirement (RCC/CCpUT sweep, TTL = 1h).

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::fig23::run(Scale::from_args())
    );
}
