//! Figure 24: caching storage mediums (HBM / +DRAM / +SSD).

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::fig24::run(Scale::from_args())
    );
}
