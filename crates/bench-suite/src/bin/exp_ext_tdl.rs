//! Extension: TDL-based selective KV preservation (§3.4's compression hook).

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (steps, episodes) = if quick { (1_600, 24) } else { (4_000, 60) };
    println!(
        "{}",
        bench_suite::experiments::ext_tdl::run(steps, episodes)
    );
}
