//! Figure 21: eviction policies under various storage settings.
//!
//! Pass `--window-sweep` for the extra look-ahead-horizon ablation.

use bench_suite::experiments::fig21;
use bench_suite::Scale;

fn main() {
    let scale = Scale::from_args();
    println!("{}", fig21::run(scale));
    if std::env::args().any(|a| a == "--window-sweep") {
        println!("{}", fig21::window_sweep(scale));
    }
}
