//! Figure 19: layer-wise pre-loading with various read buffer sizes.

fn main() {
    println!("{}", bench_suite::experiments::fig19::run());
}
