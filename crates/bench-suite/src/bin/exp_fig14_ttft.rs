//! Figure 14: time to first token, CA vs RE.

use bench_suite::experiments::e2e;
use bench_suite::Scale;

fn main() {
    let r = e2e::compute(Scale::from_args());
    println!("{}", e2e::fig14(&r));
}
