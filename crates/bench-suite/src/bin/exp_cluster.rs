//! Cluster scaling: N serving instances sharing one AttentionStore.
//!
//! Two modes:
//!
//! ```text
//! exp_cluster [--sessions N | --paper]
//!     # sweep: {1,2,4,8} instances x {affinity, least-loaded} routers,
//!     # one table of aggregate throughput + per-instance hit rates
//!
//! exp_cluster [--sessions N | --paper] --instances K
//!             [--router affinity|least-loaded]
//!             [--trace-out PATH]...   # .jsonl => JSON Lines, else Chrome trace
//!             [--metrics-out PATH]    # MetricsSnapshot as pretty JSON
//!     # single run with the full telemetry stack: every trace record is
//!     # tagged with its instance, and the Chrome export gives each
//!     # instance its own Perfetto process track
//! ```

use bench_suite::experiments::cluster;
use bench_suite::{paper_trace, scaled_config, Scale, TelemetryArgs};
use engine::{ClusterConfig, Mode, RouterKind};
use models::ModelSpec;
use telemetry::{run_cluster_with_telemetry, to_chrome_trace, to_jsonl};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn router_from_args() -> RouterKind {
    match flag_value("--router").as_deref() {
        Some("least-loaded") => RouterKind::LeastLoaded,
        _ => RouterKind::SessionAffinity,
    }
}

fn main() {
    let scale = Scale::from_args();
    let instances = flag_value("--instances").and_then(|s| s.parse::<usize>().ok());

    let Some(n) = instances else {
        // Sweep mode: the full router x instance-count comparison.
        print!("{}", cluster::run(scale, &[1, 2, 4, 8]));
        return;
    };

    // Single-run mode with full telemetry.
    let router = router_from_args();
    let outs = TelemetryArgs::from_args();
    let model = ModelSpec::llama2_13b();
    let cfg = scaled_config(Mode::CachedAttention, model, scale);
    let trace = paper_trace(scale, 1.0);
    let (report, tel) = run_cluster_with_telemetry(ClusterConfig::new(cfg, n, router), trace);

    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(tel.records())
        } else {
            to_chrome_trace(tel.records())
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_cluster] wrote {} ({} events)",
            path.display(),
            tel.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &tel.snapshot());
    }

    let snap = tel.snapshot();
    println!(
        "exp_cluster: {} instances ({} router) on Llama2-13B, {} sessions",
        n, report.router, scale.sessions
    );
    println!(
        "  makespan={:.1}s throughput={:.2} turns/s hit_rate={:.3} sessions_done={}",
        report.aggregate.makespan_secs,
        report.throughput(),
        report.aggregate.hit_rate(),
        report.aggregate.sessions_done.get()
    );
    println!(
        "  events={} turns={} retired={}",
        tel.records().len(),
        snap.turns_arrived,
        snap.retired
    );
    for inst in &report.instances {
        println!(
            "  instance {}: turns={} hit_rate={:.3} h2d={}MB d2h={}MB hbm_peak={}MB",
            inst.instance,
            inst.turns_done,
            inst.hit_rate(),
            inst.h2d_bytes / 1_000_000,
            inst.d2h_bytes / 1_000_000,
            inst.hbm_high_water_bytes / 1_000_000
        );
    }
}
