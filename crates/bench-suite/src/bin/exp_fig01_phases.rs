//! Figure 1b: prefilling vs decoding latency characteristics.

fn main() {
    println!("{}", bench_suite::experiments::fig01::run());
}
