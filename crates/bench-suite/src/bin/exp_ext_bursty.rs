//! Extension: bursty (MMPP) arrival robustness.

use bench_suite::Scale;

fn main() {
    println!(
        "{}",
        bench_suite::experiments::ext_bursty::run(Scale::from_args())
    );
}
