//! Flash-crowd robustness: SLO-aware admission control, the degradation
//! ladder and queue-driven autoscaling under a deterministic surge.
//!
//! ```text
//! exp_slo [--sessions N | --paper]
//!         [--surge-factor F]      # flash-crowd rate multiplier, default 4
//!         [--ttft-target S]       # TTFT deadline seconds, default 5.0
//!         [--windows-out PATH]    # windowed-JSONL time series + alerts
//!         [--prom-out PATH]       # Prometheus text exposition (final scrape)
//!         [--trace-out PATH]...   # .jsonl => JSON Lines, else Chrome trace
//!         [--metrics-out PATH]    # MetricsSnapshot as pretty JSON
//! ```
//!
//! Three policies serve the byte-identical surge trace on the same
//! 2-instance cluster: measurement-only FCFS (the pre-SLO baseline),
//! the EDF + degradation-ladder policy on the static fleet, and the
//! ladder with queue-driven autoscaling. The table compares
//! TTFT-deadline attainment against what each policy paid for it (shed
//! turns, degraded recomputes, forced truncations, fleet churn). All
//! telemetry artifacts come from the autoscaled run. Everything is
//! virtual-time deterministic: same flags, same table. Validate the
//! JSONL trace with `trace_check PATH` and the windowed series with
//! `trace_check --windows PATH`.

use bench_suite::experiments::slo;
use bench_suite::{Scale, TelemetryArgs};
use telemetry::{to_chrome_trace_with_alerts, to_jsonl, to_prometheus, windows_to_jsonl};

fn flag_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let scale = Scale::from_args();
    let surge_factor = flag_value("--surge-factor")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(slo::DEFAULT_SURGE_FACTOR);
    let target_secs = flag_value("--ttft-target")
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(slo::DEFAULT_TTFT_TARGET_SECS);
    let outs = TelemetryArgs::from_args();

    let r = slo::compute(scale, surge_factor, target_secs);

    if let Some(path) = flag_value("--windows-out") {
        let body = windows_to_jsonl(&r.series, &r.signals, &r.alerts);
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!(
            "[exp_slo] wrote {path} ({} windows, {} alert events)",
            r.series.windows.len(),
            r.alerts.len()
        );
    }
    if let Some(path) = flag_value("--prom-out") {
        let body = to_prometheus(&r.telemetry.snapshot());
        std::fs::write(&path, body).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("[exp_slo] wrote {path}");
    }
    for path in &outs.trace_outs {
        let body = if path.extension().is_some_and(|e| e == "jsonl") {
            to_jsonl(r.telemetry.records())
        } else {
            to_chrome_trace_with_alerts(r.telemetry.records(), &r.alerts)
        };
        std::fs::write(path, body).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!(
            "[exp_slo] wrote {} ({} events)",
            path.display(),
            r.telemetry.records().len()
        );
    }
    if let Some(path) = &outs.metrics_out {
        bench_suite::telemetry_cli::write_snapshot(path, &r.telemetry.snapshot());
    }

    println!(
        "exp_slo: {} sessions, {surge_factor:.0}x flash crowd, TTFT deadline {target_secs:.1}s",
        scale.sessions
    );
    print!("{}", slo::render(&r, surge_factor, target_secs));
    let auto = &r.rows.last().expect("three variants").report;
    println!(
        "autoscaled run: attainment={:.3} shed={} scale={}+/{}- peak={} alerts={}",
        auto.overload.attainment(),
        auto.overload.turns_shed,
        auto.overload.scale_ups,
        auto.overload.scale_downs,
        auto.overload.peak_instances,
        r.alerts.len()
    );
}
