//! Table 2: accuracy of CA / TT / NKVT on trained tiny RoPE LMs.

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (steps, episodes) = if quick { (700, 8) } else { (2_000, 24) };
    println!(
        "{}",
        bench_suite::experiments::tab12::table2(steps, episodes)
    );
}
