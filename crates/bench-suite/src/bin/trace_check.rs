//! CI validator for telemetry output files.
//!
//! ```text
//! trace_check [--jsonl PATH] [--chrome PATH] [--metrics PATH]
//!             [--windows PATH] [--self-profile PATH]
//! ```
//!
//! Checks that a JSONL trace parses line-by-line, covers every event
//! category the taxonomy defines (`session`, `sched`, `gpu` from the
//! engine; `cache`, `tiering`, `gauge` from the store — `stall` is
//! workload-dependent and not required), and forms well-formed spans:
//! every session walks the turn lifecycle in order, every opened
//! stage reaches a matching terminal event for the same session (a
//! prefetch `promoted` has its `prefetch_completed`, an arrival
//! eventually retires), and no stage has negative duration.
//!
//! Block-keyed traces are gated on their `block_config` header: every
//! `block_*` event requires the header to have appeared first (so a
//! per-session trace, which never emits the header, must carry no block
//! events at all), a header plus any `saved` commit requires at least
//! one `block_saved`, every `block_evicted` carries `refs: 0` (a node
//! still referenced by a live chain is never evicted, only demoted),
//! every `block_dedup_hit` matches at least one block of payload, and a
//! `block_saved` writes bytes exactly when it allocates fresh chunks.
//!
//! Overload-controlled traces are gated the same way on their
//! `slo_config` header: every overload event (`turn_shed`,
//! `overload_level`, `scale_up`, `scale_down`) requires the header to
//! have appeared first, so an SLO-free trace must be overload-event-free
//! byte-for-byte. A `turn_shed` is a terminal typed rejection: legal
//! only in the `arrived` phase (the turn closes with no pipeline spans),
//! with a known `reason`. Scaling must be reflected in instance
//! attribution: after a `scale_down` retires an instance, no
//! session-scoped engine event may be attributed to it until a
//! `scale_up` revives it.
//!
//! A Chrome
//! trace must be valid JSON with a non-empty `traceEvents` array whose
//! duration slices all have `dur >= 0`; a metrics snapshot must parse
//! as a JSON object.
//!
//! `--self-profile` validates a host-time self-profile (the JSON
//! `exp_scale --out` writes, or any object carrying a `self_profile`
//! key): the run must have dispatched events at a positive rate, and
//! every scope row must be internally consistent — at least one call,
//! `self_ns <= total_ns` (a scope's exclusive time cannot exceed its
//! inclusive time), `mean_ns <= max_ns <= total_ns`, and the summed
//! exclusive times must fit inside the measured wall clock (scopes
//! partition host time; they can never add up to more than the run
//! took).
//!
//! `--windows` validates the windowed-JSONL export of `exp_watch`: a
//! `window_config` header, then one `window` line per tumbling window —
//! indexes dense from 0, each window exactly `[i*width, (i+1)*width)`
//! so the series is contiguous and non-overlapping — then the alert
//! timeline: per rule, `alert_fired` and `alert_resolved` must strictly
//! alternate starting with a fire (no double-fires, no orphan
//! resolves); an alert still open at end of file is legal. Exits
//! non-zero with a message on the first failure, so `ci.sh` can gate
//! on it.

use std::collections::{BTreeSet, HashMap};
use std::process::ExitCode;

use serde::Value;

/// Categories that any non-trivial CachedAttention run must emit.
const REQUIRED_CATEGORIES: [&str; 6] = ["session", "sched", "gpu", "cache", "tiering", "gauge"];

/// Overload vocabulary gated on the `slo_config` header.
const OVERLOAD_KINDS: [&str; 4] = ["turn_shed", "overload_level", "scale_up", "scale_down"];

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("[trace_check] FAIL: {msg}");
    ExitCode::FAILURE
}

/// Where a session currently is in its turn lifecycle, plus the last
/// milestone timestamp to compare stage durations against.
struct TurnState {
    phase: &'static str,
    milestone_at: f64,
}

/// Per-session span well-formedness over the JSONL stream: lifecycle
/// order, matched open/terminal pairs, non-negative stage durations.
#[derive(Default)]
struct SpanChecker {
    turns: HashMap<u64, TurnState>,
    open_prefetch: HashMap<u64, f64>,
}

impl SpanChecker {
    fn phase(&self, session: u64) -> &'static str {
        self.turns.get(&session).map_or("idle", |t| t.phase)
    }

    fn advance(&mut self, session: u64, phase: &'static str, at: f64) {
        self.turns.insert(
            session,
            TurnState {
                phase,
                milestone_at: at,
            },
        );
    }

    /// Applies one event; returns a violation message on malformed spans.
    fn on_event(
        &mut self,
        kind: &str,
        session: u64,
        at: f64,
        get: &dyn Fn(&str) -> Option<Value>,
    ) -> Result<(), String> {
        let phase = self.phase(session);
        let milestone = self.turns.get(&session).map_or(0.0, |t| t.milestone_at);
        match kind {
            "turn_arrived" => {
                if phase != "idle" {
                    return Err(format!("turn arrived for session {session} still {phase}"));
                }
                self.advance(session, "arrived", at);
            }
            "consulted" | "deferred" if phase != "arrived" => {
                return Err(format!("`{kind}` for session {session} in phase {phase}"));
            }
            "admitted" => {
                if phase != "arrived" {
                    return Err(format!("admission for session {session} in phase {phase}"));
                }
                if at < milestone {
                    return Err(format!(
                        "negative queue wait for session {session}: admitted {at} < arrived {milestone}"
                    ));
                }
                self.advance(session, "admitted", at);
            }
            "hbm_reserved" if phase != "admitted" => {
                return Err(format!(
                    "hbm_reserved for session {session} in phase {phase}"
                ));
            }
            "prefill_timed" => {
                if phase != "admitted" {
                    return Err(format!(
                        "prefill_timed for session {session} in phase {phase}"
                    ));
                }
                for field in ["load_secs", "comp_secs", "stall_secs"] {
                    match get(field) {
                        Some(Value::F64(x)) if x >= 0.0 => {}
                        other => {
                            return Err(format!(
                                "prefill_timed for session {session}: bad `{field}` {other:?}"
                            ))
                        }
                    }
                }
                // The optional hit-tier index (present only when the
                // turn reused cached KV) must be a tier-stack index.
                match get("tier") {
                    None | Some(Value::U64(_)) => {}
                    other => {
                        return Err(format!(
                            "prefill_timed for session {session}: bad `tier` {other:?}"
                        ))
                    }
                }
            }
            "prefill_done" => {
                if phase != "admitted" {
                    return Err(format!(
                        "prefill_done for session {session} in phase {phase}"
                    ));
                }
                if at < milestone {
                    return Err(format!(
                        "negative prefill for session {session}: done {at} < admitted {milestone}"
                    ));
                }
                self.advance(session, "prefilled", at);
            }
            "retired" => {
                if phase != "prefilled" {
                    return Err(format!("retirement for session {session} in phase {phase}"));
                }
                if at < milestone {
                    return Err(format!(
                        "negative decode for session {session}: retired {at} < first token {milestone}"
                    ));
                }
                self.turns.remove(&session);
            }
            "truncated" if phase == "idle" => {
                return Err(format!("truncation for idle session {session}"));
            }
            "turn_shed" => {
                // A typed rejection is terminal: the turn arrived, was
                // refused admission, and opens no pipeline spans.
                if phase != "arrived" {
                    return Err(format!("turn_shed for session {session} in phase {phase}"));
                }
                match get("reason") {
                    Some(Value::Str(r)) if r == "inbox_full" || r == "overload_shed" => {}
                    other => {
                        return Err(format!(
                            "turn_shed for session {session} with unknown `reason` {other:?}"
                        ))
                    }
                }
                self.turns.remove(&session);
            }
            "turn_rerouted" => {
                // The turn restarts its pipeline on the target instance:
                // back to the queue, clock reset to the reroute.
                if phase == "idle" {
                    return Err(format!("reroute for idle session {session}"));
                }
                self.advance(session, "arrived", at);
            }
            "promoted" => {
                if matches!(get("fetch"), Some(Value::Str(f)) if f == "prefetch") {
                    if self.open_prefetch.contains_key(&session) {
                        return Err(format!(
                            "prefetch for session {session} re-opened before completing"
                        ));
                    }
                    self.open_prefetch.insert(session, at);
                }
            }
            "prefetch_completed" => {
                let Some(start) = self.open_prefetch.remove(&session) else {
                    return Err(format!(
                        "prefetch_completed for session {session} without an open prefetch"
                    ));
                };
                if at < start {
                    return Err(format!(
                        "negative prefetch for session {session}: completed {at} < promoted {start}"
                    ));
                }
            }
            "write_buffer_stall" => match get("until") {
                Some(Value::F64(until)) if until >= at => {}
                other => {
                    return Err(format!(
                        "write_buffer_stall for session {session}: `until` {other:?} before at {at}"
                    ))
                }
            },
            _ => {}
        }
        Ok(())
    }

    /// End-of-stream: every opened span must have terminated.
    fn finish(&self) -> Result<(), String> {
        if let Some((sid, t)) = self.turns.iter().next() {
            return Err(format!("session {sid} left {} at end of trace", t.phase));
        }
        if let Some((sid, _)) = self.open_prefetch.iter().next() {
            return Err(format!("prefetch for session {sid} never completed"));
        }
        Ok(())
    }
}

/// Per-event block-keying checks: every `block_*` event needs the
/// `block_config` header first, evictions only reclaim dead nodes,
/// dedup hits match real payload, and saves write bytes exactly when
/// they allocate fresh chunks.
fn check_block_event(
    kind: &str,
    get: &dyn Fn(&str) -> Option<Value>,
    header_seen: bool,
) -> Result<(), String> {
    if !kind.starts_with("block_") || kind == "block_config" {
        return Ok(());
    }
    if !header_seen {
        return Err(format!(
            "`{kind}` before any `block_config` header — per-session traces must carry no block \
             events"
        ));
    }
    match kind {
        "block_evicted" => match get("refs") {
            Some(Value::U64(0)) => Ok(()),
            other => Err(format!(
                "block_evicted with `refs` {other:?} — referenced nodes are never evicted"
            )),
        },
        "block_dedup_hit" => {
            let blocks = match get("matched_blocks") {
                Some(Value::U64(n)) if n >= 1 => n,
                other => {
                    return Err(format!(
                        "block_dedup_hit with bad `matched_blocks` {other:?}"
                    ))
                }
            };
            match get("bytes") {
                Some(Value::U64(b)) if b >= blocks => Ok(()),
                other => Err(format!(
                    "block_dedup_hit matching {blocks} blocks but `bytes` {other:?}"
                )),
            }
        }
        "block_saved" => {
            let (new, written) = match (get("new_blocks"), get("bytes_written")) {
                (Some(Value::U64(n)), Some(Value::U64(w))) => (n, w),
                other => return Err(format!("block_saved with bad fields {other:?}")),
            };
            let dedup = match get("dedup_blocks") {
                Some(Value::U64(d)) => d,
                other => return Err(format!("block_saved with bad `dedup_blocks` {other:?}")),
            };
            if new + dedup == 0 {
                return Err("block_saved committing an empty chain".to_string());
            }
            if (new == 0) != (written == 0) {
                return Err(format!(
                    "block_saved wrote {written} bytes over {new} fresh chunks"
                ));
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_jsonl(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut lines = 0u64;
    let mut spans = SpanChecker::default();
    // Block-keyed gating: the `block_config` header (with its chunk
    // granularity) must precede every block event.
    let mut block_tokens: Option<u64> = None;
    let mut block_saves = 0u64;
    let mut saves = 0u64;
    // Overload gating: the `slo_config` header must precede every
    // overload event. Instances retired by `scale_down` may not be
    // attributed engine work until a `scale_up` revives them.
    let mut slo_seen = false;
    let mut sheds = 0u64;
    let mut scale_events = 0u64;
    let mut retired_instances: BTreeSet<u64> = BTreeSet::new();
    for (i, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e:?}", i + 1))?;
        let Value::Object(pairs) = v else {
            return Err(format!("{path}:{}: line is not an object", i + 1));
        };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        match get("seq") {
            Some(Value::U64(n)) if n == i as u64 => {}
            other => return Err(format!("{path}:{}: bad seq {other:?}", i + 1)),
        }
        for key in ["source", "category", "kind"] {
            match get(key) {
                Some(Value::Str(_)) => {}
                _ => return Err(format!("{path}:{}: missing `{key}`", i + 1)),
            }
        }
        if let Some(Value::Str(cat)) = get("category") {
            seen.insert(cat);
        }
        if let Some(Value::Str(kind)) = get("kind") {
            check_block_event(&kind, &get, block_tokens.is_some())
                .map_err(|msg| format!("{path}:{}: {msg}", i + 1))?;
            match kind.as_str() {
                "block_config" => match get("block_tokens") {
                    Some(Value::U64(bt)) if bt > 0 => block_tokens = Some(bt),
                    other => {
                        return Err(format!(
                            "{path}:{}: block_config with bad `block_tokens` {other:?}",
                            i + 1
                        ))
                    }
                },
                "block_saved" => block_saves += 1,
                "saved" => saves += 1,
                "slo_config" => slo_seen = true,
                _ => {}
            }
            if OVERLOAD_KINDS.contains(&kind.as_str()) {
                if !slo_seen {
                    return Err(format!(
                        "{path}:{}: `{kind}` before any `slo_config` header — SLO-free traces \
                         must carry no overload events",
                        i + 1
                    ));
                }
                match kind.as_str() {
                    "turn_shed" => sheds += 1,
                    "scale_down" => {
                        scale_events += 1;
                        match get("instance") {
                            Some(Value::U64(inst)) => {
                                retired_instances.insert(inst);
                            }
                            other => {
                                return Err(format!(
                                    "{path}:{}: scale_down with bad `instance` {other:?}",
                                    i + 1
                                ))
                            }
                        }
                    }
                    "scale_up" => {
                        scale_events += 1;
                        match get("instance") {
                            Some(Value::U64(inst)) => {
                                retired_instances.remove(&inst);
                            }
                            other => {
                                return Err(format!(
                                    "{path}:{}: scale_up with bad `instance` {other:?}",
                                    i + 1
                                ))
                            }
                        }
                    }
                    _ => {}
                }
            } else if matches!(get("source"), Some(Value::Str(s)) if s == "engine")
                && get("session").is_some()
            {
                // Session-scoped engine work on a retired instance means
                // the scale-down stranded (or mis-routed) a turn.
                if let Some(Value::U64(inst)) = get("instance") {
                    if retired_instances.contains(&inst) {
                        return Err(format!(
                            "{path}:{}: `{kind}` attributed to instance {inst} after its \
                             scale_down",
                            i + 1
                        ));
                    }
                }
            }
        }
        if let (Some(Value::Str(kind)), Some(Value::U64(session))) = (get("kind"), get("session")) {
            let at = match get("at") {
                Some(Value::F64(x)) => x,
                _ => 0.0,
            };
            spans
                .on_event(&kind, session, at, &get)
                .map_err(|msg| format!("{path}:{}: {msg}", i + 1))?;
        }
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: empty trace"));
    }
    spans.finish().map_err(|msg| format!("{path}: {msg}"))?;
    if block_tokens.is_some() && saves > 0 && block_saves == 0 {
        return Err(format!(
            "{path}: block-keyed trace ({saves} saves) carries no `block_saved` events"
        ));
    }
    for cat in REQUIRED_CATEGORIES {
        if !seen.contains(cat) {
            return Err(format!("{path}: no `{cat}` events (saw: {seen:?})"));
        }
    }
    let keying = match block_tokens {
        Some(bt) => format!("block-keyed ({bt} tokens/block, {block_saves} block saves)"),
        None => "per-session".to_string(),
    };
    let overload = if slo_seen {
        format!(", SLO-controlled ({sheds} sheds, {scale_events} scale events)")
    } else {
        String::new()
    };
    println!(
        "[trace_check] {path}: {lines} events, spans well-formed, {keying}, categories \
         {seen:?}{overload}"
    );
    Ok(())
}

fn check_chrome(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: envelope is not an object"));
    };
    let events = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v);
    match events {
        Some(Value::Array(xs)) if !xs.is_empty() => {
            // Every complete ("X") slice must have a non-negative
            // duration — a negative dur renders as garbage in Perfetto
            // and means a span was paired backwards.
            for (i, ev) in xs.iter().enumerate() {
                if !matches!(ev.get("ph"), Some(Value::Str(ph)) if ph == "X") {
                    continue;
                }
                match ev.get("dur") {
                    Some(Value::F64(d)) if *d >= 0.0 => {}
                    Some(Value::U64(_)) => {}
                    other => {
                        return Err(format!(
                            "{path}: traceEvents[{i}]: X slice with bad dur {other:?}"
                        ))
                    }
                }
            }
            println!("[trace_check] {path}: {} trace events", xs.len());
            Ok(())
        }
        Some(Value::Array(_)) => Err(format!("{path}: traceEvents is empty")),
        _ => Err(format!("{path}: missing traceEvents array")),
    }
}

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: snapshot is not an object"));
    };
    for key in ["turns_arrived", "hit_rate", "store_hits_dram", "tiers"] {
        if !pairs.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: missing `{key}`"));
        }
    }
    println!("[trace_check] {path}: snapshot ok ({} fields)", pairs.len());
    Ok(())
}

/// Validates a host-time self-profile: positive throughput and
/// internally consistent per-scope timing rows.
fn check_self_profile(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    // Accept either a bare SelfProfile or a wrapper (e.g. a ScaleBench)
    // carrying one under `self_profile`.
    let profile = v.get("self_profile").unwrap_or(&v);
    let num = |field: &str| -> Result<f64, String> {
        match profile.get(field) {
            Some(Value::F64(x)) => Ok(*x),
            Some(Value::U64(n)) => Ok(*n as f64),
            other => Err(format!("{path}: bad `{field}` {other:?}")),
        }
    };
    let wall_secs = num("wall_secs")?;
    let events = num("events")?;
    let rate = num("events_per_sec")?;
    if wall_secs <= 0.0 {
        return Err(format!("{path}: non-positive wall_secs {wall_secs}"));
    }
    if events < 1.0 {
        return Err(format!("{path}: profiled run dispatched no events"));
    }
    if rate <= 0.0 {
        return Err(format!("{path}: non-positive events_per_sec {rate}"));
    }
    match profile.get("peak_rss_bytes") {
        None | Some(Value::Null) | Some(Value::U64(1..)) => {}
        other => return Err(format!("{path}: bad `peak_rss_bytes` {other:?}")),
    }
    let Some(Value::Array(scopes)) = profile.get("scopes") else {
        return Err(format!("{path}: missing `scopes` array"));
    };
    let mut self_sum_ns = 0.0f64;
    for (i, s) in scopes.iter().enumerate() {
        let name = match s.get("name") {
            Some(Value::Str(n)) if !n.is_empty() => n,
            other => return Err(format!("{path}: scopes[{i}]: bad `name` {other:?}")),
        };
        let field = |f: &str| -> Result<f64, String> {
            match s.get(f) {
                Some(Value::U64(n)) => Ok(*n as f64),
                other => Err(format!("{path}: scope `{name}`: bad `{f}` {other:?}")),
            }
        };
        let (calls, total, selfn, mean, max) = (
            field("calls")?,
            field("total_ns")?,
            field("self_ns")?,
            field("mean_ns")?,
            field("max_ns")?,
        );
        if calls < 1.0 {
            return Err(format!("{path}: scope `{name}` recorded zero calls"));
        }
        if selfn > total {
            return Err(format!(
                "{path}: scope `{name}`: self {selfn} > total {total} (exclusive time cannot \
                 exceed inclusive)"
            ));
        }
        if mean > max || max > total {
            return Err(format!(
                "{path}: scope `{name}`: mean {mean} / max {max} / total {total} out of order"
            ));
        }
        self_sum_ns += selfn;
    }
    // Exclusive times partition the instrumented host time: their sum
    // must fit in the wall clock (small slack for clock granularity).
    if self_sum_ns > wall_secs * 1e9 * 1.01 + 1e6 {
        return Err(format!(
            "{path}: summed scope self time {:.3}s exceeds wall clock {wall_secs:.3}s",
            self_sum_ns / 1e9
        ));
    }
    println!(
        "[trace_check] {path}: self-profile ok ({} scopes, {events:.0} events at {rate:.0}/s, \
         {:.1}% of wall instrumented)",
        scopes.len(),
        self_sum_ns / (wall_secs * 1e9) * 100.0
    );
    Ok(())
}

/// Validates the windowed-JSONL export: header, contiguous windows,
/// and a well-paired alert lifecycle.
fn check_windows(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut lines = text.lines().enumerate();

    let parse = |i: usize, line: &str| -> Result<Value, String> {
        serde_json::from_str(line).map_err(|e| format!("{path}:{}: not valid JSON: {e:?}", i + 1))
    };
    let kind_of = |v: &Value| -> Option<String> {
        match v.get("kind") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    };

    // Header.
    let Some((i, line)) = lines.next() else {
        return Err(format!("{path}: empty windowed export"));
    };
    let header = parse(i, line)?;
    if kind_of(&header).as_deref() != Some("window_config") {
        return Err(format!(
            "{path}: first line is not a `window_config` header"
        ));
    }
    let width = match header.get("width_secs") {
        Some(Value::F64(w)) if *w > 0.0 => *w,
        other => return Err(format!("{path}: bad header `width_secs` {other:?}")),
    };
    let declared = match header.get("windows") {
        Some(Value::U64(n)) => *n,
        other => return Err(format!("{path}: bad header `windows` {other:?}")),
    };
    if !matches!(header.get("tiers"), Some(Value::Array(_))) {
        return Err(format!("{path}: header missing `tiers` array"));
    }

    // Window lines: dense indexes, each exactly [i*width, (i+1)*width)
    // — contiguity and non-overlap in one check. Alerts follow.
    const EPS: f64 = 1e-9;
    let mut windows = 0u64;
    // Per-rule alert state: true while an alert is open.
    let mut open_rules: HashMap<String, bool> = HashMap::new();
    let mut alert_events = 0u64;
    let mut last_alert_at = f64::NEG_INFINITY;
    let mut in_alerts = false;
    for (i, line) in lines {
        let v = parse(i, line)?;
        let kind = kind_of(&v).ok_or_else(|| format!("{path}:{}: missing `kind`", i + 1))?;
        match kind.as_str() {
            "window" => {
                if in_alerts {
                    return Err(format!("{path}:{}: window line after alerts began", i + 1));
                }
                match v.get("index") {
                    Some(Value::U64(n)) if *n == windows => {}
                    other => {
                        return Err(format!(
                            "{path}:{}: expected window index {windows}, got {other:?}",
                            i + 1
                        ))
                    }
                }
                let (start, end) = match (v.get("start_secs"), v.get("end_secs")) {
                    (Some(Value::F64(s)), Some(Value::F64(e))) => (s, e),
                    other => return Err(format!("{path}:{}: bad window bounds {other:?}", i + 1)),
                };
                let want_start = windows as f64 * width;
                if (start - want_start).abs() > EPS || (end - (want_start + width)).abs() > EPS {
                    return Err(format!(
                        "{path}:{}: window {windows} spans [{start}, {end}), expected \
                         [{want_start}, {}) — series not contiguous",
                        i + 1,
                        want_start + width
                    ));
                }
                for key in ["counters", "ttft", "queue_wait", "tiers"] {
                    if v.get(key).is_none() {
                        return Err(format!("{path}:{}: window missing `{key}`", i + 1));
                    }
                }
                windows += 1;
            }
            "alert_fired" | "alert_resolved" => {
                in_alerts = true;
                let rule = match v.get("rule") {
                    Some(Value::Str(r)) => r.clone(),
                    other => return Err(format!("{path}:{}: bad alert `rule` {other:?}", i + 1)),
                };
                match v.get("window") {
                    Some(Value::U64(w)) if *w < windows => {}
                    other => {
                        return Err(format!(
                        "{path}:{}: alert `window` {other:?} outside the {windows}-window series",
                        i + 1
                    ))
                    }
                }
                let at = match v.get("at") {
                    Some(Value::F64(a)) => *a,
                    other => return Err(format!("{path}:{}: bad alert `at` {other:?}", i + 1)),
                };
                if at < last_alert_at {
                    return Err(format!(
                        "{path}:{}: alert timeline not chronological ({at} after {last_alert_at})",
                        i + 1
                    ));
                }
                last_alert_at = at;
                let open = open_rules.entry(rule.clone()).or_insert(false);
                match (kind.as_str(), *open) {
                    ("alert_fired", false) => *open = true,
                    ("alert_fired", true) => {
                        return Err(format!(
                            "{path}:{}: rule `{rule}` fired while already active",
                            i + 1
                        ))
                    }
                    ("alert_resolved", true) => *open = false,
                    ("alert_resolved", false) => {
                        return Err(format!(
                            "{path}:{}: rule `{rule}` resolved without an open alert",
                            i + 1
                        ))
                    }
                    _ => unreachable!(),
                }
                alert_events += 1;
            }
            other => {
                return Err(format!("{path}:{}: unexpected line kind `{other}`", i + 1));
            }
        }
    }
    if windows == 0 {
        return Err(format!("{path}: no window lines"));
    }
    if windows != declared {
        return Err(format!(
            "{path}: header declares {declared} windows, found {windows}"
        ));
    }
    let still_open: Vec<&String> = open_rules
        .iter()
        .filter(|(_, open)| **open)
        .map(|(r, _)| r)
        .collect();
    println!(
        "[trace_check] {path}: {windows} contiguous windows x {width}s, {alert_events} alert \
         events well-paired ({} open at EOF)",
        still_open.len()
    );
    Ok(())
}

fn main() -> ExitCode {
    let mut checked = false;
    for (flag, check) in [
        ("--jsonl", check_jsonl as fn(&str) -> Result<(), String>),
        ("--chrome", check_chrome),
        ("--metrics", check_metrics),
        ("--windows", check_windows),
        ("--self-profile", check_self_profile),
    ] {
        if let Some(path) = arg_value(flag) {
            checked = true;
            if let Err(msg) = check(&path) {
                return fail(&msg);
            }
        }
    }
    if !checked {
        return fail(
            "nothing to check: pass --jsonl/--chrome/--metrics/--windows/--self-profile PATH",
        );
    }
    println!("[trace_check] ok");
    ExitCode::SUCCESS
}
