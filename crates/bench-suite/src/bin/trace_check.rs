//! CI validator for telemetry output files.
//!
//! ```text
//! trace_check [--jsonl PATH] [--chrome PATH] [--metrics PATH]
//! ```
//!
//! Checks that a JSONL trace parses line-by-line, covers every event
//! category the taxonomy defines (`session`, `sched`, `gpu` from the
//! engine; `cache`, `tiering`, `gauge` from the store — `stall` is
//! workload-dependent and not required), and forms well-formed spans:
//! every session walks the turn lifecycle in order, every opened
//! stage reaches a matching terminal event for the same session (a
//! prefetch `promoted` has its `prefetch_completed`, an arrival
//! eventually retires), and no stage has negative duration. A Chrome
//! trace must be valid JSON with a non-empty `traceEvents` array whose
//! duration slices all have `dur >= 0`; a metrics snapshot must parse
//! as a JSON object. Exits non-zero with a message on the first
//! failure, so `ci.sh` can gate on it.

use std::collections::{BTreeSet, HashMap};
use std::process::ExitCode;

use serde::Value;

/// Categories that any non-trivial CachedAttention run must emit.
const REQUIRED_CATEGORIES: [&str; 6] = ["session", "sched", "gpu", "cache", "tiering", "gauge"];

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("[trace_check] FAIL: {msg}");
    ExitCode::FAILURE
}

/// Where a session currently is in its turn lifecycle, plus the last
/// milestone timestamp to compare stage durations against.
struct TurnState {
    phase: &'static str,
    milestone_at: f64,
}

/// Per-session span well-formedness over the JSONL stream: lifecycle
/// order, matched open/terminal pairs, non-negative stage durations.
#[derive(Default)]
struct SpanChecker {
    turns: HashMap<u64, TurnState>,
    open_prefetch: HashMap<u64, f64>,
}

impl SpanChecker {
    fn phase(&self, session: u64) -> &'static str {
        self.turns.get(&session).map_or("idle", |t| t.phase)
    }

    fn advance(&mut self, session: u64, phase: &'static str, at: f64) {
        self.turns.insert(
            session,
            TurnState {
                phase,
                milestone_at: at,
            },
        );
    }

    /// Applies one event; returns a violation message on malformed spans.
    fn on_event(
        &mut self,
        kind: &str,
        session: u64,
        at: f64,
        get: &dyn Fn(&str) -> Option<Value>,
    ) -> Result<(), String> {
        let phase = self.phase(session);
        let milestone = self.turns.get(&session).map_or(0.0, |t| t.milestone_at);
        match kind {
            "turn_arrived" => {
                if phase != "idle" {
                    return Err(format!("turn arrived for session {session} still {phase}"));
                }
                self.advance(session, "arrived", at);
            }
            "consulted" | "deferred" if phase != "arrived" => {
                return Err(format!("`{kind}` for session {session} in phase {phase}"));
            }
            "admitted" => {
                if phase != "arrived" {
                    return Err(format!("admission for session {session} in phase {phase}"));
                }
                if at < milestone {
                    return Err(format!(
                        "negative queue wait for session {session}: admitted {at} < arrived {milestone}"
                    ));
                }
                self.advance(session, "admitted", at);
            }
            "hbm_reserved" if phase != "admitted" => {
                return Err(format!(
                    "hbm_reserved for session {session} in phase {phase}"
                ));
            }
            "prefill_timed" => {
                if phase != "admitted" {
                    return Err(format!(
                        "prefill_timed for session {session} in phase {phase}"
                    ));
                }
                for field in ["load_secs", "comp_secs", "stall_secs"] {
                    match get(field) {
                        Some(Value::F64(x)) if x >= 0.0 => {}
                        other => {
                            return Err(format!(
                                "prefill_timed for session {session}: bad `{field}` {other:?}"
                            ))
                        }
                    }
                }
                // The optional hit-tier index (present only when the
                // turn reused cached KV) must be a tier-stack index.
                match get("tier") {
                    None | Some(Value::U64(_)) => {}
                    other => {
                        return Err(format!(
                            "prefill_timed for session {session}: bad `tier` {other:?}"
                        ))
                    }
                }
            }
            "prefill_done" => {
                if phase != "admitted" {
                    return Err(format!(
                        "prefill_done for session {session} in phase {phase}"
                    ));
                }
                if at < milestone {
                    return Err(format!(
                        "negative prefill for session {session}: done {at} < admitted {milestone}"
                    ));
                }
                self.advance(session, "prefilled", at);
            }
            "retired" => {
                if phase != "prefilled" {
                    return Err(format!("retirement for session {session} in phase {phase}"));
                }
                if at < milestone {
                    return Err(format!(
                        "negative decode for session {session}: retired {at} < first token {milestone}"
                    ));
                }
                self.turns.remove(&session);
            }
            "truncated" if phase == "idle" => {
                return Err(format!("truncation for idle session {session}"));
            }
            "turn_rerouted" => {
                // The turn restarts its pipeline on the target instance:
                // back to the queue, clock reset to the reroute.
                if phase == "idle" {
                    return Err(format!("reroute for idle session {session}"));
                }
                self.advance(session, "arrived", at);
            }
            "promoted" => {
                if matches!(get("fetch"), Some(Value::Str(f)) if f == "prefetch") {
                    if self.open_prefetch.contains_key(&session) {
                        return Err(format!(
                            "prefetch for session {session} re-opened before completing"
                        ));
                    }
                    self.open_prefetch.insert(session, at);
                }
            }
            "prefetch_completed" => {
                let Some(start) = self.open_prefetch.remove(&session) else {
                    return Err(format!(
                        "prefetch_completed for session {session} without an open prefetch"
                    ));
                };
                if at < start {
                    return Err(format!(
                        "negative prefetch for session {session}: completed {at} < promoted {start}"
                    ));
                }
            }
            "write_buffer_stall" => match get("until") {
                Some(Value::F64(until)) if until >= at => {}
                other => {
                    return Err(format!(
                        "write_buffer_stall for session {session}: `until` {other:?} before at {at}"
                    ))
                }
            },
            _ => {}
        }
        Ok(())
    }

    /// End-of-stream: every opened span must have terminated.
    fn finish(&self) -> Result<(), String> {
        if let Some((sid, t)) = self.turns.iter().next() {
            return Err(format!("session {sid} left {} at end of trace", t.phase));
        }
        if let Some((sid, _)) = self.open_prefetch.iter().next() {
            return Err(format!("prefetch for session {sid} never completed"));
        }
        Ok(())
    }
}

fn check_jsonl(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut lines = 0u64;
    let mut spans = SpanChecker::default();
    for (i, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e:?}", i + 1))?;
        let Value::Object(pairs) = v else {
            return Err(format!("{path}:{}: line is not an object", i + 1));
        };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        match get("seq") {
            Some(Value::U64(n)) if n == i as u64 => {}
            other => return Err(format!("{path}:{}: bad seq {other:?}", i + 1)),
        }
        for key in ["source", "category", "kind"] {
            match get(key) {
                Some(Value::Str(_)) => {}
                _ => return Err(format!("{path}:{}: missing `{key}`", i + 1)),
            }
        }
        if let Some(Value::Str(cat)) = get("category") {
            seen.insert(cat);
        }
        if let (Some(Value::Str(kind)), Some(Value::U64(session))) = (get("kind"), get("session")) {
            let at = match get("at") {
                Some(Value::F64(x)) => x,
                _ => 0.0,
            };
            spans
                .on_event(&kind, session, at, &get)
                .map_err(|msg| format!("{path}:{}: {msg}", i + 1))?;
        }
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: empty trace"));
    }
    spans.finish().map_err(|msg| format!("{path}: {msg}"))?;
    for cat in REQUIRED_CATEGORIES {
        if !seen.contains(cat) {
            return Err(format!("{path}: no `{cat}` events (saw: {seen:?})"));
        }
    }
    println!("[trace_check] {path}: {lines} events, spans well-formed, categories {seen:?}");
    Ok(())
}

fn check_chrome(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: envelope is not an object"));
    };
    let events = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v);
    match events {
        Some(Value::Array(xs)) if !xs.is_empty() => {
            // Every complete ("X") slice must have a non-negative
            // duration — a negative dur renders as garbage in Perfetto
            // and means a span was paired backwards.
            for (i, ev) in xs.iter().enumerate() {
                if !matches!(ev.get("ph"), Some(Value::Str(ph)) if ph == "X") {
                    continue;
                }
                match ev.get("dur") {
                    Some(Value::F64(d)) if *d >= 0.0 => {}
                    Some(Value::U64(_)) => {}
                    other => {
                        return Err(format!(
                            "{path}: traceEvents[{i}]: X slice with bad dur {other:?}"
                        ))
                    }
                }
            }
            println!("[trace_check] {path}: {} trace events", xs.len());
            Ok(())
        }
        Some(Value::Array(_)) => Err(format!("{path}: traceEvents is empty")),
        _ => Err(format!("{path}: missing traceEvents array")),
    }
}

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: snapshot is not an object"));
    };
    for key in ["turns_arrived", "hit_rate", "store_hits_dram", "tiers"] {
        if !pairs.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: missing `{key}`"));
        }
    }
    println!("[trace_check] {path}: snapshot ok ({} fields)", pairs.len());
    Ok(())
}

fn main() -> ExitCode {
    let mut checked = false;
    for (flag, check) in [
        ("--jsonl", check_jsonl as fn(&str) -> Result<(), String>),
        ("--chrome", check_chrome),
        ("--metrics", check_metrics),
    ] {
        if let Some(path) = arg_value(flag) {
            checked = true;
            if let Err(msg) = check(&path) {
                return fail(&msg);
            }
        }
    }
    if !checked {
        return fail("nothing to check: pass --jsonl/--chrome/--metrics PATH");
    }
    println!("[trace_check] ok");
    ExitCode::SUCCESS
}
