//! CI validator for telemetry output files.
//!
//! ```text
//! trace_check [--jsonl PATH] [--chrome PATH] [--metrics PATH]
//! ```
//!
//! Checks that a JSONL trace parses line-by-line and covers every event
//! category the taxonomy defines (`session`, `sched`, `gpu` from the
//! engine; `cache`, `tiering`, `gauge` from the store — `stall` is
//! workload-dependent and not required), that a Chrome trace is valid
//! JSON with a non-empty `traceEvents` array, and that a metrics
//! snapshot parses as a JSON object. Exits non-zero with a message on
//! the first failure, so `ci.sh` can gate on it.

use std::collections::BTreeSet;
use std::process::ExitCode;

use serde::Value;

/// Categories that any non-trivial CachedAttention run must emit.
const REQUIRED_CATEGORIES: [&str; 6] = ["session", "sched", "gpu", "cache", "tiering", "gauge"];

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("[trace_check] FAIL: {msg}");
    ExitCode::FAILURE
}

fn check_jsonl(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut lines = 0u64;
    for (i, line) in text.lines().enumerate() {
        let v: Value = serde_json::from_str(line)
            .map_err(|e| format!("{path}:{}: not valid JSON: {e:?}", i + 1))?;
        let Value::Object(pairs) = v else {
            return Err(format!("{path}:{}: line is not an object", i + 1));
        };
        let get = |key: &str| pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone());
        match get("seq") {
            Some(Value::U64(n)) if n == i as u64 => {}
            other => return Err(format!("{path}:{}: bad seq {other:?}", i + 1)),
        }
        for key in ["source", "category", "kind"] {
            match get(key) {
                Some(Value::Str(_)) => {}
                _ => return Err(format!("{path}:{}: missing `{key}`", i + 1)),
            }
        }
        if let Some(Value::Str(cat)) = get("category") {
            seen.insert(cat);
        }
        lines += 1;
    }
    if lines == 0 {
        return Err(format!("{path}: empty trace"));
    }
    for cat in REQUIRED_CATEGORIES {
        if !seen.contains(cat) {
            return Err(format!("{path}: no `{cat}` events (saw: {seen:?})"));
        }
    }
    println!("[trace_check] {path}: {lines} events, categories {seen:?}");
    Ok(())
}

fn check_chrome(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: envelope is not an object"));
    };
    let events = pairs
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v);
    match events {
        Some(Value::Array(xs)) if !xs.is_empty() => {
            println!("[trace_check] {path}: {} trace events", xs.len());
            Ok(())
        }
        Some(Value::Array(_)) => Err(format!("{path}: traceEvents is empty")),
        _ => Err(format!("{path}: missing traceEvents array")),
    }
}

fn check_metrics(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("{path}: not valid JSON: {e:?}"))?;
    let Value::Object(pairs) = v else {
        return Err(format!("{path}: snapshot is not an object"));
    };
    for key in ["turns_arrived", "hit_rate", "store_hits_dram"] {
        if !pairs.iter().any(|(k, _)| k == key) {
            return Err(format!("{path}: missing `{key}`"));
        }
    }
    println!("[trace_check] {path}: snapshot ok ({} fields)", pairs.len());
    Ok(())
}

fn main() -> ExitCode {
    let mut checked = false;
    for (flag, check) in [
        ("--jsonl", check_jsonl as fn(&str) -> Result<(), String>),
        ("--chrome", check_chrome),
        ("--metrics", check_metrics),
    ] {
        if let Some(path) = arg_value(flag) {
            checked = true;
            if let Err(msg) = check(&path) {
                return fail(&msg);
            }
        }
    }
    if !checked {
        return fail("nothing to check: pass --jsonl/--chrome/--metrics PATH");
    }
    println!("[trace_check] ok");
    ExitCode::SUCCESS
}
