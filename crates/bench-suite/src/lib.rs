#![warn(missing_docs)]

//! Shared harness for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one of the paper's tables or
//! figures (see `DESIGN.md` for the index). This library holds the pieces
//! they share: workload construction, the four-model end-to-end runner,
//! and simple CLI parsing.

use engine::{run_trace, EngineConfig, Mode, RunReport};
use models::ModelSpec;
use workload::{Generator, ShareGptProfile, Trace};

pub mod experiments;
pub mod profile;
pub mod telemetry_cli;

pub use telemetry_cli::TelemetryArgs;

/// Default seed used by every experiment unless overridden.
pub const DEFAULT_SEED: u64 = 20240418;

/// Scale of an end-to-end run.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Number of conversation sessions.
    pub sessions: usize,
    /// Leading turn arrivals excluded from metrics (store warmup).
    pub warmup_turns: usize,
}

impl Scale {
    /// The paper's full setup: 9K sessions, first 10K of ~52K turns warm
    /// the store (§4.2). Slow: minutes per model/mode pair.
    pub fn paper() -> Self {
        Scale {
            sessions: 9_000,
            warmup_turns: 10_000,
        }
    }

    /// A proportional small run for quick iteration and CI.
    pub fn quick() -> Self {
        Scale {
            sessions: 1_000,
            warmup_turns: 1_100,
        }
    }

    /// Capacity factor for scale-proportional storage: the paper's hit
    /// rates come from 9K sessions pressuring a 128 GB / 10 TB store, so
    /// a quick run with `N` sessions shrinks the store by `N / 9000` to
    /// preserve the pressure (and therefore the eviction dynamics).
    pub fn capacity_factor(&self) -> f64 {
        (self.sessions as f64 / Scale::paper().sessions as f64).min(1.0)
    }

    /// Parses `--sessions N` / `--paper` from CLI args, defaulting to
    /// [`Scale::quick`]. Warmup stays proportional (~19% of turns, like
    /// the paper's 10K/52K).
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--paper") {
            return Scale::paper();
        }
        if let Some(pos) = args.iter().position(|a| a == "--sessions") {
            if let Some(n) = args.get(pos + 1).and_then(|s| s.parse::<usize>().ok()) {
                return Scale {
                    sessions: n,
                    warmup_turns: n * 11 / 10,
                };
            }
        }
        Scale::quick()
    }
}

/// Builds the ShareGPT-calibrated trace used by the end-to-end runs.
pub fn paper_trace(scale: Scale, arrival_rate: f64) -> Trace {
    let profile = ShareGptProfile::default().with_arrival_rate(arrival_rate);
    Generator::new(profile, DEFAULT_SEED).trace(scale.sessions)
}

/// The paper's engine configuration with storage scaled to the run's
/// session count (see [`Scale::capacity_factor`]).
///
/// Session granularity sets a floor: DRAM must still stage a handful of
/// whole sessions (the store moves sessions atomically, §3.3.2), so very
/// small test runs keep at least 5 window-sized sessions of DRAM and 25
/// of disk.
pub fn scaled_config(mode: Mode, model: ModelSpec, scale: Scale) -> EngineConfig {
    let f = scale.capacity_factor();
    let max_session = model.kv_bytes(model.context_window as u64);
    let mut cfg = EngineConfig::paper(mode, model).with_warmup(scale.warmup_turns);
    cfg.store
        .set_dram_bytes(((cfg.store.dram_bytes() as f64 * f) as u64).max(5 * max_session));
    cfg.store
        .set_disk_bytes(((cfg.store.disk_bytes() as f64 * f) as u64).max(25 * max_session));
    cfg.cluster.tiers[0].capacity = cfg.store.dram_bytes();
    cfg.cluster.tiers[1].capacity = cfg.store.disk_bytes();
    cfg
}

/// Runs one (model, mode) end-to-end experiment at the paper's settings
/// (scale-proportional storage).
pub fn run_e2e(mode: Mode, model: ModelSpec, scale: Scale) -> RunReport {
    let trace = paper_trace(scale, 1.0);
    run_trace(scaled_config(mode, model, scale), trace)
}

/// Runs CA and RE for every evaluation model; returns `(model, ca, re)`.
pub fn run_all_models(scale: Scale) -> Vec<(ModelSpec, RunReport, RunReport)> {
    models::evaluation_models()
        .into_iter()
        .map(|m| {
            let ca = run_e2e(Mode::CachedAttention, m.clone(), scale);
            let re = run_e2e(Mode::Recompute, m.clone(), scale);
            (m, ca, re)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_are_sane() {
        let p = Scale::paper();
        assert_eq!(p.sessions, 9_000);
        let q = Scale::quick();
        assert!(q.sessions < p.sessions);
        assert!(q.warmup_turns > 0);
    }

    #[test]
    fn trace_scales_with_sessions() {
        let t = paper_trace(
            Scale {
                sessions: 50,
                warmup_turns: 0,
            },
            1.0,
        );
        assert_eq!(t.sessions.len(), 50);
    }
}
