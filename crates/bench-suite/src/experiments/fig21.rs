//! Figure 21: scheduler-aware eviction vs LRU vs FIFO under different
//! storage configurations (§4.3.3).
//!
//! Paper (LLaMA-13B): at 128G/10T CA hits 86% vs LRU 58% and FIFO 48%,
//! with LRU/FIFO DRAM hit rates near zero (no prefetching) while CA's
//! hits land >99% in DRAM; the hit-rate gap translates into up to 2.7×
//! GPU time.

use engine::{run_trace, EngineConfig, Mode, RunReport};
use metrics::table::{pct, Table};
use models::ModelSpec;
use store::PolicyKind;

use crate::{paper_trace, Scale};

/// Runs one (policy, DRAM, disk) cell.
pub fn run_cell(policy: PolicyKind, dram_bytes: u64, disk_bytes: u64, scale: Scale) -> RunReport {
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b())
        .with_warmup(scale.warmup_turns);
    cfg.store.policy = policy;
    cfg.store.set_dram_bytes(dram_bytes);
    cfg.store.set_disk_bytes(disk_bytes);
    cfg.cluster.tiers[0].capacity = dram_bytes;
    cfg.cluster.tiers[1].capacity = disk_bytes;
    run_trace(cfg, paper_trace(scale, 1.0))
}

/// Renders the Figure 21 table.
pub fn run(scale: Scale) -> String {
    let configs = [
        ("128G/2T", 2_000_000_000_000u64),
        ("128G/10T", 10_000_000_000_000),
    ];
    let policies = [
        ("CA", PolicyKind::SchedulerAware),
        ("LRU", PolicyKind::Lru),
        ("FIFO", PolicyKind::Fifo),
    ];
    let mut t = Table::new(
        "Figure 21: eviction policies (LLaMA-13B)",
        &[
            "storage",
            "policy",
            "hit rate",
            "DRAM hits",
            "disk hits",
            "GPU busy h",
        ],
    );
    let mut out = String::new();
    let f = scale.capacity_factor();
    for (label, disk) in configs {
        for (pname, policy) in policies {
            let r = run_cell(
                policy,
                (128_000_000_000f64 * f) as u64,
                (disk as f64 * f) as u64,
                scale,
            );
            t.row(&[
                label.into(),
                pname.into(),
                pct(r.hit_rate()),
                pct(r.fast_hit_rate()),
                pct(r.slow_hit_rate()),
                format!("{:.2}", r.busy_hours()),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push_str(
        "paper shape: CA > LRU > FIFO on overall hit rate; LRU/FIFO DRAM hit rates\n\
         are near zero (no prefetching); CA's hits are almost all DRAM hits.\n",
    );
    out
}

/// Extra ablation (not a paper figure): how the look-ahead window length
/// affects the scheduler-aware hit rate. Demonstrates that the paper's
/// `(C_mem + C_disk)/S_kv` sizing saturates the benefit.
pub fn window_sweep(scale: Scale) -> String {
    // The window length is derived inside the store from capacity and the
    // average entry size; sweep capacity to move it.
    let mut t = Table::new(
        "Ablation: look-ahead horizon via store capacity (LLaMA-13B, scheduler-aware)",
        &["disk capacity", "eviction window (entries)", "hit rate"],
    );
    let f = scale.capacity_factor();
    for disk_tb in [1u64, 2, 5, 10] {
        let r = run_cell(
            PolicyKind::SchedulerAware,
            (128_000_000_000f64 * f) as u64,
            ((disk_tb * 1_000_000_000_000) as f64 * f) as u64,
            scale,
        );
        let window = (128_000_000_000 + disk_tb * 1_000_000_000_000)
            / ModelSpec::llama2_13b().kv_bytes(1500).max(1);
        t.row(&[format!("{disk_tb}T"), window.to_string(), pct(r.hit_rate())]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            sessions: 120,
            warmup_turns: 120,
        }
    }

    /// The policy ordering from the paper: CA ≥ LRU ≥ FIFO on hit rate,
    /// and CA's hits land in DRAM while LRU's do not (no prefetch).
    #[test]
    fn policy_ordering_holds_under_pressure() {
        // A deliberately tight store so eviction and placement decisions
        // matter: DRAM holds only a handful of sessions.
        let dram = 16_000_000_000u64;
        let disk = 120_000_000_000u64;
        let ca = run_cell(PolicyKind::SchedulerAware, dram, disk, tiny());
        let lru = run_cell(PolicyKind::Lru, dram, disk, tiny());
        let fifo = run_cell(PolicyKind::Fifo, dram, disk, tiny());
        assert!(
            ca.hit_rate() >= lru.hit_rate() - 0.02,
            "CA {} vs LRU {}",
            ca.hit_rate(),
            lru.hit_rate()
        );
        assert!(
            lru.hit_rate() >= fifo.hit_rate() - 0.02,
            "LRU {} vs FIFO {}",
            lru.hit_rate(),
            fifo.hit_rate()
        );
        assert!(
            ca.fast_hit_rate() > lru.fast_hit_rate(),
            "CA DRAM {} vs LRU DRAM {}",
            ca.fast_hit_rate(),
            lru.fast_hit_rate()
        );
    }

    /// More disk capacity never hurts the scheduler-aware hit rate.
    #[test]
    fn capacity_monotone() {
        let dram = 128_000_000_000;
        let small = run_cell(PolicyKind::SchedulerAware, dram, 100_000_000_000, tiny());
        let big = run_cell(PolicyKind::SchedulerAware, dram, 2_000_000_000_000, tiny());
        assert!(big.hit_rate() >= small.hit_rate() - 0.02);
    }
}
