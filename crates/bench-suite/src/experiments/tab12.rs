//! Tables 1 and 2: perplexity and accuracy of the truncation schemes
//! (§4.3.5).
//!
//! The paper measures LLaMA-7B/13B on WikiText-2/PTB/C4 (PPL) and
//! MMLU/LongEval/PIQA (accuracy). Without GPUs or LLaMA weights, we train
//! tiny RoPE transformers from scratch (see `tinyllm`/`nanograd`) on
//! synthetic corpora and run the paper's exact protocol: feed a long
//! context to overflow the window, truncate with each scheme, then
//! evaluate the continuation.
//!
//! - **Table 1** stand-ins: three order-2 Markov character languages
//!   ("Markov-A/B/C" for WikiText-2/PTB/C4), two model sizes
//!   (TinyLM-S/M for LLaMA-7B/13B). Metric: perplexity.
//! - **Table 2** stand-ins: next-symbol top-1 accuracy ("NextSym" for
//!   MMLU), key-value retrieval accuracy on a model trained for
//!   retrieval ("Retrieval" for LongEval), and greedy-decode agreement
//!   with the TT reference ("Agreement" for PIQA).

use metrics::table::{pct, Table};
use tinyllm::corpus::{retrieval_task, MarkovLang, RESERVED_SYMBOLS};
use tinyllm::train::Trainer;
use tinyllm::{argmax, log_prob, Model, PeMode, TinyConfig};

/// Trained sequence length; evaluation stays within it (RoPE does not
/// extrapolate) and plays the role of the paper's context window.
pub const TRAIN_SEQ: usize = 96;
/// The context window used to trigger truncation.
pub const WINDOW: usize = 64;
/// Tokens dropped on overflow (ratio 0.5, like the paper's RE baseline).
pub const DROP: usize = WINDOW / 2;

/// The two model sizes of the tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Size {
    /// 2 layers, dim 32 (the "LLaMA-7B" row).
    S,
    /// 3 layers, dim 48 (the "LLaMA-13B" row).
    M,
}

impl Size {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Size::S => "TinyLM-S",
            Size::M => "TinyLM-M",
        }
    }

    /// Architecture for this size over a `vocab`-symbol alphabet.
    pub fn config(self, vocab: usize) -> TinyConfig {
        match self {
            Size::S => TinyConfig {
                vocab,
                dim: 32,
                n_layers: 2,
                n_heads: 4,
                n_kv_heads: 4,
                head_dim: 8,
                ffn_dim: 96,
                rope_theta: 10_000.0,
                eps: 1e-5,
            },
            Size::M => TinyConfig {
                vocab,
                dim: 48,
                n_layers: 3,
                n_heads: 4,
                n_kv_heads: 4,
                head_dim: 12,
                ffn_dim: 144,
                rope_theta: 10_000.0,
                eps: 1e-5,
            },
        }
    }
}

/// On-disk cache for trained models, keyed by the full training recipe.
/// Lives under `target/` so `cargo clean` clears it.
fn cached_or_train(key: &str, train: impl FnOnce() -> Model) -> Model {
    let dir = std::path::Path::new("target").join("tinyllm-cache");
    let path = dir.join(format!("{key}.tlm"));
    if let Ok(bytes) = std::fs::read(&path) {
        if let Ok(m) = Model::from_bytes(&bytes) {
            return m;
        }
    }
    let m = train();
    if std::fs::create_dir_all(&dir).is_ok() {
        // Caching is best-effort; a read-only tree just retrains.
        let _ = std::fs::write(&path, m.to_bytes());
    }
    m
}

/// Trains a language model of `size` on `lang` for `steps` steps
/// (cached on disk by recipe).
pub fn train_lm(lang: &MarkovLang, size: Size, steps: usize, seed: u64) -> Model {
    // Fingerprint the language itself (a short deterministic sample) so
    // two languages with identical hyperparameters cannot share a key.
    let fp: u64 = lang
        .sample(32, 0)
        .iter()
        .fold(0u64, |h, &t| h.wrapping_mul(131).wrapping_add(t as u64 + 1));
    let key = format!(
        "lm-v1-{}-{}-{}-{}-{}-{fp:x}",
        size.label(),
        lang.vocab(),
        lang.order(),
        steps,
        seed
    );
    cached_or_train(&key, || {
        let corpus = lang.sample(40_000, seed);
        let mut trainer = Trainer::new(size.config(lang.vocab()), seed + 1, 3e-3);
        trainer.train(&corpus, TRAIN_SEQ, steps, seed + 2);
        trainer.into_model()
    })
}

/// The three truncation schemes under test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheme {
    /// CachedAttention: decoupled-PE KV truncation.
    Ca,
    /// Token truncation + recompute (the reference).
    Tt,
    /// Naive KV truncation of a coupled cache.
    Nkvt,
}

impl Scheme {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Ca => "CA",
            Scheme::Tt => "TT",
            Scheme::Nkvt => "NKVT",
        }
    }
}

/// Builds the post-truncation cache for `scheme` given the overflowing
/// `prompt` (length ≥ WINDOW).
pub fn truncated_cache(m: &Model, prompt: &[usize], scheme: Scheme) -> tinyllm::KvCache {
    match scheme {
        Scheme::Tt => {
            let mut c = m.cache(PeMode::Decoupled);
            m.forward(&prompt[DROP..], &mut c);
            c
        }
        Scheme::Ca => {
            let mut c = m.cache(PeMode::Decoupled);
            m.forward(prompt, &mut c);
            c.truncate_front(DROP);
            c
        }
        Scheme::Nkvt => {
            let mut c = m.cache(PeMode::Coupled);
            m.forward(prompt, &mut c);
            c.truncate_front(DROP);
            c
        }
    }
}

/// Mean perplexity of `scheme` over `episodes` overflow episodes.
pub fn scheme_ppl(m: &Model, lang: &MarkovLang, scheme: Scheme, episodes: usize) -> f64 {
    let mut nll = 0.0f64;
    let mut count = 0usize;
    for ep in 0..episodes {
        let text = lang.sample(WINDOW + 24, 1000 + ep as u64);
        let (prompt, tail) = text.split_at(WINDOW);
        let mut cache = truncated_cache(m, prompt, scheme);
        let mut prev = prompt[prompt.len() - 1];
        for &next in tail {
            let logits = m.forward_one(prev, &mut cache);
            nll -= log_prob(&logits, next) as f64;
            count += 1;
            prev = next;
        }
    }
    (nll / count as f64).exp()
}

/// Next-symbol top-1 accuracy of `scheme` (the MMLU stand-in).
pub fn next_symbol_accuracy(m: &Model, lang: &MarkovLang, scheme: Scheme, episodes: usize) -> f64 {
    let mut hits = 0usize;
    let mut count = 0usize;
    for ep in 0..episodes {
        let text = lang.sample(WINDOW + 24, 2000 + ep as u64);
        let (prompt, tail) = text.split_at(WINDOW);
        let mut cache = truncated_cache(m, prompt, scheme);
        let mut prev = prompt[prompt.len() - 1];
        for &next in tail {
            let logits = m.forward_one(prev, &mut cache);
            if argmax(&logits) == next {
                hits += 1;
            }
            count += 1;
            prev = next;
        }
    }
    hits as f64 / count as f64
}

/// Greedy next-token agreement of `scheme` with the TT reference over
/// teacher-forced continuations (the PIQA stand-in).
///
/// Teacher forcing (both sides see the same ground-truth continuation)
/// isolates the truncation scheme's effect: long free-running rollouts
/// would diverge chaotically even under tiny logit perturbations.
pub fn agreement(m: &Model, lang: &MarkovLang, scheme: Scheme, episodes: usize) -> f64 {
    let mut agree = 0usize;
    let mut count = 0usize;
    for ep in 0..episodes {
        let text = lang.sample(WINDOW + 16, 3000 + ep as u64);
        let (prompt, tail) = text.split_at(WINDOW);
        let mut tt = truncated_cache(m, prompt, Scheme::Tt);
        let mut other = truncated_cache(m, prompt, scheme);
        let mut prev = prompt[prompt.len() - 1];
        for &next in tail {
            let ref_logits = m.forward_one(prev, &mut tt);
            let got_logits = m.forward_one(prev, &mut other);
            if argmax(&ref_logits) == argmax(&got_logits) {
                agree += 1;
            }
            count += 1;
            prev = next;
        }
    }
    agree as f64 / count as f64
}

/// Trains a retrieval model: sequences of key-value records followed by a
/// query whose answer is the queried key's value (the LongEval stand-in).
/// Records per retrieval episode. Smaller than the LM experiments'
/// record capacity: key-value induction at these model sizes needs a
/// tractable matching problem, and 8 records still leave half the
/// context to truncate away.
pub const RETRIEVAL_PAIRS: usize = 8;
/// The retrieval episodes' effective context window (records + query).
pub const RETRIEVAL_WINDOW: usize = RETRIEVAL_PAIRS * 2 + 2;
/// Tokens dropped when a retrieval context overflows (ratio 0.5).
pub const RETRIEVAL_DROP: usize = RETRIEVAL_WINDOW / 2;

/// Retrieval-specific architectures: induction-style key matching needs
/// more attention heads than the language-model configs.
fn retrieval_config(size: Size, vocab: usize) -> TinyConfig {
    match size {
        Size::S => TinyConfig {
            vocab,
            dim: 64,
            n_layers: 2,
            n_heads: 8,
            n_kv_heads: 8,
            head_dim: 8,
            ffn_dim: 192,
            rope_theta: 10_000.0,
            eps: 1e-5,
        },
        Size::M => TinyConfig {
            vocab,
            dim: 96,
            n_layers: 2,
            n_heads: 8,
            n_kv_heads: 8,
            head_dim: 12,
            ffn_dim: 288,
            rope_theta: 10_000.0,
            eps: 1e-5,
        },
    }
}

/// Trains a retrieval model (cached on disk by recipe): key-value
/// records followed by queries whose answers are the queried keys'
/// values (the LongEval stand-in).
pub fn train_retrieval(size: Size, steps: usize, seed: u64) -> Model {
    let key = format!("retrieval-v2-{}-{}-{}", size.label(), steps, seed);
    cached_or_train(&key, || train_retrieval_uncached(size, steps, seed))
}

fn train_retrieval_uncached(size: Size, steps: usize, seed: u64) -> Model {
    // 16 payload symbols (8 keys + 8 values) + SEP + QUERY.
    let vocab = 18;
    let query = vocab - 1;
    let mut trainer = Trainer::new(retrieval_config(size, vocab), seed, 1.5e-3);
    // The records are random noise, so only answer positions are
    // supervised. Each training episode appends several `[QUERY key
    // value]` blocks so one step carries several retrieval gradients —
    // one query per episode is too sparse for induction circuits to form.
    let n_pairs = RETRIEVAL_PAIRS;
    let queries_per_episode = 6;
    let mut rng = sim::SimRng::seed_from_u64(seed + 999);
    for step in 0..steps {
        let ask = rng.index(n_pairs);
        let t = retrieval_task(vocab, n_pairs, ask, seed + 10_000 + step as u64);
        // `t.prompt` ends with [QUERY, key]; extend it with the answer
        // and more query blocks over other records.
        let mut inputs = t.prompt.clone();
        let mut targets = vec![nanograd::IGNORE_TARGET; inputs.len() - 1];
        targets.push(t.answer);
        for _ in 1..queries_per_episode {
            let pick = rng.index(n_pairs);
            let key = t.prompt[pick * 2];
            let value = t.prompt[pick * 2 + 1];
            // Previous answer token becomes input context.
            inputs.push(targets[targets.len() - 1]);
            targets.push(nanograd::IGNORE_TARGET);
            inputs.push(query);
            targets.push(nanograd::IGNORE_TARGET);
            inputs.push(key);
            targets.push(value);
        }
        trainer.step_with_targets(&inputs, &targets);
    }
    trainer.into_model()
}

/// Retrieval accuracy of `scheme`: the context overflows, the queried
/// record sits in the *retained* half, and the model must produce the
/// right value.
pub fn retrieval_accuracy(m: &Model, scheme: Scheme, episodes: usize) -> f64 {
    let vocab = m.cfg.vocab;
    assert!(vocab > RESERVED_SYMBOLS);
    let n_pairs = RETRIEVAL_PAIRS;
    let mut hits = 0usize;
    for ep in 0..episodes {
        // Ask about a record in the second (retained) half.
        let ask = n_pairs / 2 + 1 + ep % (n_pairs / 2 - 2);
        let t = retrieval_task(vocab, n_pairs, ask, 50_000 + ep as u64);
        // The prompt (records + query) overflows the window by
        // construction once padded; truncate as each scheme would, then
        // read the model's answer.
        let prompt = &t.prompt;
        // Feed everything except the final query key, truncate, then the
        // query key is the "new input" after truncation.
        let (ctx, query_tail) = prompt.split_at(prompt.len() - 2);
        let mut cache = match scheme {
            Scheme::Tt => {
                let mut c = m.cache(PeMode::Decoupled);
                m.forward(&ctx[RETRIEVAL_DROP.min(ctx.len() - 1)..], &mut c);
                c
            }
            Scheme::Ca => {
                let mut c = m.cache(PeMode::Decoupled);
                m.forward(ctx, &mut c);
                c.truncate_front(RETRIEVAL_DROP.min(ctx.len() - 1));
                c
            }
            Scheme::Nkvt => {
                let mut c = m.cache(PeMode::Coupled);
                m.forward(ctx, &mut c);
                c.truncate_front(RETRIEVAL_DROP.min(ctx.len() - 1));
                c
            }
        };
        let logits = m.forward(query_tail, &mut cache);
        if argmax(logits.last().expect("query emitted logits")) == t.answer {
            hits += 1;
        }
    }
    hits as f64 / episodes as f64
}

/// Mean KL divergence of `scheme`'s next-token distributions from the
/// TT reference (logit fidelity; 0 = exact agreement).
pub fn logit_fidelity(m: &Model, lang: &MarkovLang, scheme: Scheme, episodes: usize) -> f64 {
    let mut total = 0.0f64;
    let mut count = 0usize;
    for ep in 0..episodes {
        let text = lang.sample(WINDOW + 16, 4000 + ep as u64);
        let (prompt, tail) = text.split_at(WINDOW);
        let mut tt = truncated_cache(m, prompt, Scheme::Tt);
        let mut other = truncated_cache(m, prompt, scheme);
        let mut prev = prompt[prompt.len() - 1];
        for &next in tail {
            let ref_logits = m.forward_one(prev, &mut tt);
            let got_logits = m.forward_one(prev, &mut other);
            total += tinyllm::kl_divergence(&ref_logits, &got_logits);
            count += 1;
            prev = next;
        }
    }
    total / count as f64
}

/// Renders Table 1 (perplexity) for the given training budget.
pub fn table1(steps: usize, episodes: usize) -> String {
    let datasets = [("Markov-A", 1u64), ("Markov-B", 2), ("Markov-C", 3)];
    let mut t = Table::new(
        "Table 1: perplexity of the truncation schemes (trained tiny RoPE LMs)",
        &["dataset", "model", "CA", "TT", "NKVT"],
    );
    for (name, seed) in datasets {
        let lang = MarkovLang::order2(16, seed);
        for size in [Size::S, Size::M] {
            let m = train_lm(&lang, size, steps, seed * 100);
            let ca = scheme_ppl(&m, &lang, Scheme::Ca, episodes);
            let tt = scheme_ppl(&m, &lang, Scheme::Tt, episodes);
            let nkvt = scheme_ppl(&m, &lang, Scheme::Nkvt, episodes);
            t.row(&[
                name.into(),
                size.label().into(),
                format!("{ca:.2}"),
                format!("{tt:.2}"),
                format!("{nkvt:.2}"),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "paper shape: CA tracks TT (paper difference < 0.02 PPL at LLaMA scale)\n\
         while NKVT collapses (paper: >10^3 PPL); at tiny scale the NKVT blowup\n\
         is smaller in magnitude but strictly and consistently worse.\n",
    );
    out
}

/// Renders Table 2 (accuracy) for the given training budget.
pub fn table2(steps: usize, episodes: usize) -> String {
    let mut t = Table::new(
        "Table 2: accuracy of the truncation schemes (trained tiny RoPE LMs)",
        &["benchmark", "model", "CA", "TT", "NKVT"],
    );
    let lang = MarkovLang::order2(16, 1);
    // One language model per size serves both the NextSym and Agreement
    // rows; the Retrieval row needs its own retrieval-trained model.
    let lms: Vec<(Size, Model)> = [Size::S, Size::M]
        .into_iter()
        .map(|size| (size, train_lm(&lang, size, steps, 100)))
        .collect();
    for (size, m) in &lms {
        let row = |s: Scheme| next_symbol_accuracy(m, &lang, s, episodes);
        t.row(&[
            "NextSym".into(),
            size.label().into(),
            pct(row(Scheme::Ca)),
            pct(row(Scheme::Tt)),
            pct(row(Scheme::Nkvt)),
        ]);
    }
    for size in [Size::S, Size::M] {
        let m = train_retrieval(size, steps * 2, 777);
        let row = |s: Scheme| retrieval_accuracy(&m, s, episodes * 4);
        t.row(&[
            "Retrieval".into(),
            size.label().into(),
            pct(row(Scheme::Ca)),
            pct(row(Scheme::Tt)),
            pct(row(Scheme::Nkvt)),
        ]);
    }
    for (size, m) in &lms {
        let row = |s: Scheme| agreement(m, &lang, s, episodes);
        t.row(&[
            "Agreement".into(),
            size.label().into(),
            pct(row(Scheme::Ca)),
            pct(row(Scheme::Tt)),
            pct(row(Scheme::Nkvt)),
        ]);
    }
    for (size, m) in &lms {
        let row = |s: Scheme| logit_fidelity(m, &lang, s, episodes);
        t.row(&[
            "KL vs TT (nats)".into(),
            size.label().into(),
            format!("{:.4}", row(Scheme::Ca)),
            format!("{:.4}", row(Scheme::Tt)),
            format!("{:.4}", row(Scheme::Nkvt)),
        ]);
    }
    t.render()
}

/// Renders both tables.
pub fn run(steps: usize, episodes: usize) -> String {
    let mut out = table1(steps, episodes);
    out.push('\n');
    out.push_str(&table2(steps, episodes));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Table 1 shape at a reduced training budget: CA ≈ TT ≪ NKVT.
    #[test]
    fn ppl_shape_holds() {
        let lang = MarkovLang::order2(16, 1);
        let m = train_lm(&lang, Size::S, 700, 100);
        let ca = scheme_ppl(&m, &lang, Scheme::Ca, 6);
        let tt = scheme_ppl(&m, &lang, Scheme::Tt, 6);
        let nkvt = scheme_ppl(&m, &lang, Scheme::Nkvt, 6);
        assert!((ca - tt).abs() / tt < 0.10, "CA {ca} vs TT {tt}");
        assert!(nkvt > tt * 1.10, "NKVT {nkvt} vs TT {tt}");
    }

    /// Greedy agreement: CA stays near 100%, NKVT falls well below.
    #[test]
    fn agreement_shape_holds() {
        let lang = MarkovLang::order2(16, 1);
        let m = train_lm(&lang, Size::S, 700, 100);
        let ca = agreement(&m, &lang, Scheme::Ca, 10);
        let nkvt = agreement(&m, &lang, Scheme::Nkvt, 10);
        assert!(ca > 0.85, "CA agreement {ca}");
        assert!(nkvt < ca - 0.1, "NKVT {nkvt} vs CA {ca}");
    }
}
