//! Tier-stack design-space sweep: capacity planning over depth-N stacks.
//!
//! Not a paper figure — the paper fixes a DRAM/SSD pair (§3.3) — but the
//! question its cost argument begs: once the store walks an arbitrary
//! [`TierStack`], which *mix* of media serves a workload cheapest without
//! giving back the TTFT win? This experiment sweeps candidate stacks —
//! the paper's 2-tier baseline, a pooled-memory middle tier, an
//! object-store cold floor, and a shifted capacity split — through the
//! same workload and fault schedule, then prices each run with the
//! [`PriceSheet`] rental rates so per-tier hit rates, TTFT p50/p95 and
//! dollars-per-session-hour land side by side in one table.
//!
//! The cost figure of merit is `$/sess·h`: the platform's hourly rental
//! (GPUs plus every tier's capacity at its $/GB·h rate) divided by
//! session throughput (sessions served per makespan hour) — the dollars
//! to carry one session end to end at the configuration's sustained
//! rate. A cheaper stack that tanks the hit rate pays the cost back in
//! makespan, so the column moves for both reasons.

use engine::{ClusterConfig, ClusterReport, Mode, RouterKind};
use metrics::aws::PriceSheet;
use metrics::table::Table;
use models::{ModelSpec, TierSpec, TierStack};
use sim::{FaultPlan, Time};
use telemetry::{run_cluster_with_telemetry, MetricsSnapshot};

use crate::{paper_trace, scaled_config, Scale};

/// One candidate stack in the sweep.
pub struct StackCase {
    /// Row label.
    pub label: &'static str,
    /// The stack, fastest tier first.
    pub tiers: TierStack,
}

/// The candidate stacks, scaled to the run's session count the same way
/// [`scaled_config`] scales the paper pair (with the same whole-session
/// floors, so tiny CI runs still stage full sessions):
///
/// - `paper 2-tier`  — DRAM(D) / SSD(S), byte-identical to the default.
/// - `+pooled`       — half the DRAM, a pooled-memory tier of D between
///   it and the same SSD: trades local DRAM for cheaper remote memory.
/// - `+object`       — four deep: DRAM(D/2) / pooled(D) / SSD(S/2) /
///   object(2S); the cold floor doubles total capacity at a third of the
///   SSD's $/GB.
/// - `lean-dram`     — DRAM(D/4) / pooled(D/2) / SSD(S): the aggressive
///   end of the split, probing how little hot memory the workload needs.
pub fn stack_cases(scale: Scale, model: &ModelSpec) -> Vec<StackCase> {
    let base = scaled_config(Mode::CachedAttention, model.clone(), scale).store;
    let max_session = model.kv_bytes(model.context_window as u64);
    let d = base.dram_bytes();
    let s = base.disk_bytes();
    let floor = 5 * max_session;
    vec![
        StackCase {
            label: "paper 2-tier",
            tiers: TierStack::two_tier(d, s),
        },
        StackCase {
            label: "+pooled",
            tiers: TierStack::new(vec![
                TierSpec::dram((d / 2).max(floor)),
                TierSpec::pooled_memory(d),
                TierSpec::ssd(s),
            ]),
        },
        StackCase {
            label: "+object",
            tiers: TierStack::new(vec![
                TierSpec::dram((d / 2).max(floor)),
                TierSpec::pooled_memory(d),
                TierSpec::ssd((s / 2).max(5 * floor)),
                TierSpec::object_store(2 * s),
            ]),
        },
        StackCase {
            label: "lean-dram",
            tiers: TierStack::new(vec![
                TierSpec::dram((d / 4).max(floor)),
                TierSpec::pooled_memory((d / 2).max(floor)),
                TierSpec::ssd(s),
            ]),
        },
    ]
}

/// A mild fault schedule that touches every boundary a four-deep stack
/// exposes: read slowdowns on the top boundary and the deeper
/// `slow-rd2`/`slow-rd3` links, a write stall on the top boundary, and
/// low SSD error rates. Boundaries a shallower stack lacks are simply
/// absent from its run (the engine skips unmatched link names), so the
/// same plan is fair across depths.
pub fn tier_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_link_slowdown(
            "slow-rd",
            Time::from_secs_f64(2.0),
            Time::from_secs_f64(20.0),
            2.0,
        )
        .with_link_slowdown(
            "slow-rd2",
            Time::from_secs_f64(4.0),
            Time::from_secs_f64(24.0),
            3.0,
        )
        .with_link_slowdown(
            "slow-rd3",
            Time::from_secs_f64(6.0),
            Time::from_secs_f64(28.0),
            4.0,
        )
        .with_link_stall(
            "slow-wr",
            Time::from_secs_f64(5.0),
            Time::from_secs_f64(9.0),
        )
        .with_ssd_errors(0.01, 0.01, 0.0)
}

/// One stack's measured row.
pub struct TierRow {
    /// Case label.
    pub label: &'static str,
    /// The stack that ran.
    pub stack: TierStack,
    /// Hourly rental of the stack's storage alone.
    pub storage_dollars_per_hour: f64,
    /// Platform $/h over session throughput — see the module docs.
    pub dollars_per_session_hour: f64,
    /// Median service TTFT, milliseconds.
    pub ttft_p50_ms: f64,
    /// p95 service TTFT, milliseconds.
    pub ttft_p95_ms: f64,
    /// Sessions the run completed.
    pub sessions_done: u64,
    /// `(tier name, store hits)` per tier, fastest first.
    pub tier_hits: Vec<(String, u64)>,
    /// Store consultations (hits + misses) the hub classified.
    pub lookups: u64,
}

/// The sweep results, one row per candidate stack.
pub struct TierResults {
    /// Rows in [`stack_cases`] order.
    pub rows: Vec<TierRow>,
}

fn row_from(
    case: StackCase,
    n_gpus: u32,
    report: &ClusterReport,
    snap: &MetricsSnapshot,
    prices: &PriceSheet,
) -> TierRow {
    let storage_rate = case.tiers.dollars_per_hour();
    let rate = prices.gpu_per_hour * f64::from(n_gpus) + storage_rate;
    let makespan_hours = report.aggregate.makespan_secs / 3600.0;
    let sessions = report.aggregate.sessions_done.get();
    let dollars_per_session_hour = if sessions == 0 {
        f64::INFINITY
    } else {
        rate * makespan_hours / sessions as f64
    };
    let tier_hits = snap
        .tiers
        .iter()
        .map(|t| (t.name.clone(), t.store_hits))
        .collect();
    TierRow {
        label: case.label,
        stack: case.tiers,
        storage_dollars_per_hour: storage_rate,
        dollars_per_session_hour,
        ttft_p50_ms: snap.ttft_p50_secs.unwrap_or(0.0) * 1e3,
        ttft_p95_ms: snap.ttft_p95_secs.unwrap_or(0.0) * 1e3,
        sessions_done: sessions,
        tier_hits,
        lookups: snap.hits_fast + snap.hits_slow + snap.misses,
    }
}

/// Runs the sweep: the same workload (and, when `faulted`, the same
/// fault schedule) through every candidate stack on a single serving
/// instance, so every difference between rows is the stack.
pub fn compute(scale: Scale, faulted: bool) -> TierResults {
    let model = ModelSpec::llama2_13b();
    let prices = PriceSheet::default();
    let mut rows = Vec::new();
    for case in stack_cases(scale, &model) {
        let mut cfg = scaled_config(Mode::CachedAttention, model.clone(), scale);
        cfg.store.tiers = case.tiers.clone();
        cfg.cluster.tiers = case.tiers.clone();
        let n_gpus = cfg.cluster.n_gpus;
        let trace = paper_trace(scale, 1.0);
        let mut cluster = ClusterConfig::new(cfg, 1, RouterKind::SessionAffinity);
        if faulted {
            cluster = cluster.with_faults(tier_plan(crate::DEFAULT_SEED));
        }
        let (report, tel) = run_cluster_with_telemetry(cluster, trace);
        rows.push(row_from(case, n_gpus, &report, &tel.snapshot(), &prices));
    }
    TierResults { rows }
}

/// Formats a capacity compactly: `128G`, `10T`.
fn cap(bytes: u64) -> String {
    if bytes >= 1_000_000_000_000 {
        format!("{:.0}T", bytes as f64 / 1e12)
    } else {
        format!("{:.0}G", bytes as f64 / 1e9)
    }
}

/// Renders a stack as `dram 13G+disk 10T`.
fn stack_cell(stack: &TierStack) -> String {
    stack
        .0
        .iter()
        .map(|t| format!("{} {}", t.name, cap(t.capacity)))
        .collect::<Vec<_>>()
        .join("+")
}

/// Renders per-tier hit rates as `dram 62.1% pooled 8.3% disk 1.0%`.
fn hits_cell(row: &TierRow) -> String {
    row.tier_hits
        .iter()
        .map(|(name, hits)| {
            let share = if row.lookups == 0 {
                0.0
            } else {
                *hits as f64 / row.lookups as f64
            };
            format!("{name} {:.1}%", share * 100.0)
        })
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders the sweep as a comparison table, cheapest mix visible at a
/// glance in the `$/sess·h` column.
pub fn render(r: &TierResults) -> String {
    let mut t = Table::new(
        "Tier-stack sweep: storage mix vs. latency and cost (1 instance)",
        &[
            "config",
            "stack",
            "store $/h",
            "per-tier hit rate",
            "TTFT p50 ms",
            "TTFT p95 ms",
            "$/sess·h",
        ],
    );
    for row in &r.rows {
        t.row(&[
            row.label.to_string(),
            stack_cell(&row.stack),
            format!("{:.4}", row.storage_dollars_per_hour),
            hits_cell(row),
            format!("{:.1}", row.ttft_p50_ms),
            format!("{:.1}", row.ttft_p95_ms),
            format!("{:.5}", row.dollars_per_session_hour),
        ]);
    }
    t.render()
}

/// Runs the faulted sweep at `scale` and renders the table.
pub fn run(scale: Scale) -> String {
    render(&compute(scale, true))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The candidate list covers the design space the module documents:
    /// the exact paper pair, a pooled middle tier, a four-deep stack
    /// with an object-store floor, and a lean split.
    #[test]
    fn cases_cover_the_design_space() {
        let scale = Scale {
            sessions: 30,
            warmup_turns: 0,
        };
        let model = ModelSpec::llama2_13b();
        let cases = stack_cases(scale, &model);
        assert_eq!(cases.len(), 4);
        let base = scaled_config(Mode::CachedAttention, model, scale).store;
        assert_eq!(
            cases[0].tiers, base.tiers,
            "baseline must be the paper pair"
        );
        assert_eq!(cases[1].tiers.len(), 3);
        let deep = &cases[2].tiers;
        assert_eq!(deep.len(), 4);
        assert_eq!(
            deep.0.iter().map(|t| t.name).collect::<Vec<_>>(),
            ["dram", "pooled", "disk", "object"]
        );
        // Deeper stacks buy more total capacity for less than the
        // paper pair's rate would charge for it.
        assert!(deep.total_capacity() > cases[0].tiers.total_capacity());
        let per_gb_hour = |s: &TierStack| s.dollars_per_hour() / (s.total_capacity() as f64 / 1e9);
        assert!(per_gb_hour(deep) < per_gb_hour(&cases[0].tiers));
    }

    /// The fault plan names every boundary of a four-deep stack.
    #[test]
    fn plan_reaches_deep_boundaries() {
        let plan = tier_plan(1);
        assert!(!plan.is_empty());
        assert_eq!(plan.link_faults.len(), 4);
        assert!(plan.crashes.is_empty(), "the sweep must not crash anyone");
    }

    /// A small faulted sweep serves every session on every stack, the
    /// four-deep row reports per-tier hits for all four tiers, and every
    /// row prices to a finite positive figure.
    #[test]
    fn sweep_serves_everything_on_every_stack() {
        let scale = Scale {
            sessions: 30,
            warmup_turns: 0,
        };
        let r = compute(scale, true);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            assert_eq!(row.sessions_done, 30, "{}: sessions lost", row.label);
            assert!(row.lookups > 0, "{}: no store consultations", row.label);
            assert!(
                row.dollars_per_session_hour.is_finite() && row.dollars_per_session_hour > 0.0,
                "{}: bad cost figure",
                row.label
            );
        }
        assert!(r.rows[0].tier_hits.iter().map(|(_, h)| h).sum::<u64>() > 0);
        let deep = &r.rows[2];
        assert_eq!(deep.tier_hits.len(), 4, "four-deep row must report 4 tiers");
        assert_eq!(deep.tier_hits[1].0, "pooled");
        let table = render(&r);
        assert!(table.contains("$/sess·h"));
        assert!(table.contains("paper 2-tier"));
        assert!(table.contains("object"));
    }
}
