//! Figure 19: layer-wise pre-loading with various read-buffer sizes
//! (§4.3.2).
//!
//! Setting: LLaMA-13B, one GPU, batch 16, 1K historical + 100 new tokens.
//! Paper: PL-B0 cuts prefill time 35% vs NO-PL; PF-B15 cuts 61%.

use engine::overlap::{no_preload, with_preload, PreloadParams};
use metrics::table::{pct, Table};
use models::{ClusterSpec, CostModel, ModelSpec};
use sim::Dur;

/// Prefill time (ms) for a read buffer of `buffer` layers; `None` means
/// no pre-loading at all.
pub fn prefill_ms(buffer: Option<u32>) -> f64 {
    let m = ModelSpec::llama2_13b();
    let c = ClusterSpec::paper_testbed().with_gpus(1);
    let cm = CostModel::default();
    let (hist, new, batch) = (1024u64, 100u64, 16u64);
    let comp = cm.prefill_time(&m, &c, new * batch, hist * batch);
    let load_bytes = m.kv_bytes(hist * batch);
    let t_load_layer = Dur::from_secs_f64(load_bytes as f64 / m.n_layers as f64 / c.pcie_bw);
    let b = buffer.unwrap_or(0);
    let params = PreloadParams {
        n_layers: m.n_layers,
        t_load_layer,
        t_comp_layer: comp / m.n_layers as u64,
        buffer_layers: b,
        warm: t_load_layer * b as u64,
        delay: Dur::ZERO,
    };
    match buffer {
        None => no_preload(&params).done.as_millis_f64(),
        Some(_) => with_preload(&params).done.as_millis_f64(),
    }
}

/// Renders the Figure 19 table.
pub fn run() -> String {
    let no_pl = prefill_ms(None);
    let mut t = Table::new(
        "Figure 19: layer-wise pre-loading vs read buffer size (LLaMA-13B, 1K hist + 100 new, batch 16)",
        &["scheme", "prefill (ms)", "vs NO-PL", "paper"],
    );
    t.row(&[
        "NO-PL".into(),
        format!("{no_pl:.0}"),
        "-".into(),
        "-".into(),
    ]);
    for (b, paper) in [(0u32, "35%"), (5, ""), (10, ""), (15, "61%")] {
        let ms = prefill_ms(Some(b));
        t.row(&[
            format!("PL-B{b}"),
            format!("{ms:.0}"),
            pct(1.0 - ms / no_pl),
            paper.into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's two quantitative anchors, within tolerance: PL-B0
    /// ~35% and PF-B15 ~61% reduction vs NO-PL.
    #[test]
    fn reductions_match_paper_anchors() {
        let no_pl = prefill_ms(None);
        let b0 = 1.0 - prefill_ms(Some(0)) / no_pl;
        let b15 = 1.0 - prefill_ms(Some(15)) / no_pl;
        assert!((0.25..=0.50).contains(&b0), "PL-B0 reduction {b0}");
        assert!((0.50..=0.70).contains(&b15), "PF-B15 reduction {b15}");
        assert!(b15 > b0);
    }

    /// Bigger buffers monotonically help.
    #[test]
    fn buffer_monotone() {
        let times: Vec<f64> = [0u32, 5, 10, 15]
            .iter()
            .map(|&b| prefill_ms(Some(b)))
            .collect();
        for w in times.windows(2) {
            assert!(w[1] <= w[0] + 1e-9);
        }
    }
}
