//! Figure 20: asynchronous KV cache saving (§4.3.2).
//!
//! Setting: LLaMA-13B, one GPU, batch 16, prompts 1K–1.6K tokens, 20
//! decode steps. Paper: overlapping the write-back with execution cuts
//! overall time by 13–15%.

use engine::overlap::save_blocking_time;
use metrics::table::{pct, Table};
use models::{ClusterSpec, CostModel, ModelSpec};
use sim::Dur;

/// Returns `(sync_total_ms, async_total_ms)` for one prompt length.
pub fn totals_ms(prompt: u64) -> (f64, f64) {
    let m = ModelSpec::llama2_13b();
    let c = ClusterSpec::paper_testbed().with_gpus(1);
    let cm = CostModel::default();
    let (batch, steps) = (16u64, 20u64);
    let prefill = cm.prefill_time(&m, &c, prompt * batch, 0);
    let mut decode = Dur::ZERO;
    for s in 0..steps {
        decode += cm.decode_iter_time(&m, &c, batch, (prompt + s) * batch);
    }
    let save_bytes = m.kv_bytes((prompt + steps) * batch);
    let save = Dur::from_secs_f64(save_bytes as f64 / c.pcie_bw);
    // HBM write buffer sized as in the end-to-end config (2 GB).
    let buffered = Dur::from_secs_f64(2.0e9 / c.pcie_bw);
    let sync = prefill + decode + save;
    let blocking = save_blocking_time(save, decode, buffered, true);
    let asynchronous = prefill + decode + blocking;
    (sync.as_millis_f64(), asynchronous.as_millis_f64())
}

/// Renders the Figure 20 table.
pub fn run() -> String {
    let mut t = Table::new(
        "Figure 20: asynchronous saving (LLaMA-13B, batch 16, 20 decode steps)",
        &[
            "prompt",
            "sync total (ms)",
            "async total (ms)",
            "reduction",
            "paper",
        ],
    );
    for prompt in [1000u64, 1200, 1400, 1600] {
        let (sync, asy) = totals_ms(prompt);
        t.row(&[
            prompt.to_string(),
            format!("{sync:.0}"),
            format!("{asy:.0}"),
            pct(1.0 - asy / sync),
            "13-15%".into(),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The async reduction lands in the paper's 13–15% band (±5 pp).
    #[test]
    fn reduction_matches_paper_band() {
        for prompt in [1000u64, 1600] {
            let (sync, asy) = totals_ms(prompt);
            let reduction = 1.0 - asy / sync;
            assert!(
                (0.08..=0.20).contains(&reduction),
                "prompt {prompt}: reduction {reduction}"
            );
        }
    }

    /// The absolute saving grows with the prompt (more KV to write).
    #[test]
    fn saving_grows_with_prompt() {
        let (s1, a1) = totals_ms(1000);
        let (s2, a2) = totals_ms(1600);
        assert!(s2 - a2 >= s1 - a1);
    }
}
