//! Figure 18: recomputation vs CachedAttention across historical/new
//! token splits (§4.3.1).
//!
//! Setting: LLaMA-13B, batch 16, one A100; each request presents 1K
//! prompt tokens split `hist/new`. Bars per group: RE (recompute all),
//! CA without pre-loading (load then compute), CA with layer-wise
//! pre-loading. Uses the theoretical cost calibration, like the paper's
//! microbenchmarks.

use engine::overlap::{no_preload, with_preload, PreloadParams};
use metrics::table::Table;
use models::{ClusterSpec, CostModel, ModelSpec};
use sim::Dur;

/// Computes the three bar heights for a `hist/new` split, in ms.
pub fn bars(hist: u64, new: u64, batch: u64) -> (f64, f64, f64) {
    let m = ModelSpec::llama2_13b();
    let c = ClusterSpec::paper_testbed().with_gpus(1);
    let cm = CostModel::default();
    let re = cm.prefill_time(&m, &c, (hist + new) * batch, 0);
    let comp = cm.prefill_time(&m, &c, new * batch, hist * batch);
    let load_bytes = m.kv_bytes(hist * batch);
    let t_load_layer = Dur::from_secs_f64(load_bytes as f64 / m.n_layers as f64 / c.pcie_bw);
    let params = PreloadParams {
        n_layers: m.n_layers,
        t_load_layer,
        t_comp_layer: comp / m.n_layers as u64,
        buffer_layers: 15,
        warm: t_load_layer * 15,
        delay: Dur::ZERO,
    };
    let ca_nopl = no_preload(&params).done;
    let ca_pl = with_preload(&params).done;
    (
        re.as_millis_f64(),
        ca_nopl.as_millis_f64(),
        ca_pl.as_millis_f64(),
    )
}

/// Renders the Figure 18 table.
pub fn run() -> String {
    let mut t = Table::new(
        "Figure 18: recomputation vs CachedAttention (LLaMA-13B, batch 16, 1xA100, 1K prompt tokens)",
        &["hist/new", "RE (ms)", "CA no-preload (ms)", "CA preload (ms)"],
    );
    for (hist, new) in [
        (500u64, 500u64),
        (600, 400),
        (700, 300),
        (800, 200),
        (900, 100),
    ] {
        let (re, nopl, pl) = bars(hist, new, 16);
        t.row(&[
            format!("{hist}/{new}"),
            format!("{re:.0}"),
            format!("{nopl:.0}"),
            format!("{pl:.0}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "paper shape: CA beats RE at every split; the gap widens as the new-token\n\
         share shrinks, and pre-loading hides the KV loading time.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CA with pre-loading beats plain CA, which beats RE, at every split.
    #[test]
    fn ordering_holds_at_all_splits() {
        for (hist, new) in [(500u64, 500u64), (700, 300), (900, 100)] {
            let (re, nopl, pl) = bars(hist, new, 16);
            assert!(pl <= nopl, "{hist}/{new}: pl {pl} nopl {nopl}");
            assert!(nopl < re, "{hist}/{new}: nopl {nopl} re {re}");
        }
    }

    /// The advantage grows as the new-token share shrinks (paper text).
    #[test]
    fn advantage_grows_with_history_share() {
        let (re1, _, pl1) = bars(500, 500, 16);
        let (re2, _, pl2) = bars(900, 100, 16);
        assert!(re2 / pl2 > re1 / pl1);
    }
}
