//! Figure 2: the ShareGPT conversation statistics the workload generator
//! is calibrated against.

use metrics::table::{pct, Table};
use workload::stats;

use crate::{paper_trace, Scale};

/// Renders the dataset-statistics comparison.
pub fn run(sessions: usize) -> String {
    let trace = paper_trace(
        Scale {
            sessions,
            warmup_turns: 0,
        },
        1.0,
    );
    let n = trace.sessions.len() as f64;
    let multi = trace.sessions.iter().filter(|s| s.n_turns() > 1).count() as f64 / n;
    let mean_turns = trace.total_turns() as f64 / n;
    let over2k = stats::fraction_longer_than(&trace, 2048);
    let over4k = stats::fraction_longer_than(&trace, 4096);
    let mut t = Table::new(
        "Figure 2: ShareGPT statistics (synthetic calibration vs paper)",
        &["statistic", "measured", "paper"],
    );
    t.row(&["multi-turn sessions".into(), pct(multi), "73.0%".into()]);
    t.row(&[
        "mean turns / session".into(),
        format!("{mean_turns:.2}"),
        "5.75".into(),
    ]);
    t.row(&["sessions > 2K tokens".into(), pct(over2k), "47.0%".into()]);
    t.row(&["sessions > 4K tokens".into(), pct(over4k), "30.0%".into()]);
    let mut out = t.render();
    // Also print the turn-count histogram head (Fig 2a's shape).
    let hist = stats::turn_histogram(&trace, 10);
    out.push_str("\nturn-count distribution (bins 1..9, 10 = >=10 turns):\n");
    for (i, frac) in hist.iter().enumerate() {
        out.push_str(&format!("  {:>2} turns: {}\n", i + 1, pct(*frac)));
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn calibration_matches_paper_targets() {
        let s = super::run(5_000);
        assert!(s.contains("multi-turn"));
        assert!(s.contains("73.0%"));
    }
}
