//! Figure 23: required cache capacity vs hit rate and throughput
//! (§4.3.6).
//!
//! `CCpUT = DSpUT · CCpS`: the capacity that would hold every distinct
//! session served per unit time (= the TTL, one hour) at its maximum KV
//! size (context window × bytes/token). The paper reaches a 51% hit rate
//! at `RCC/CCpUT = 0.1` and 98% at 0.25 — far below full provisioning,
//! because cached sessions are not uniformly hot.

use engine::{run_trace, EngineConfig, Mode, RunReport};
use metrics::table::{pct, Table};
use models::ModelSpec;
use sim::Dur;

use crate::{paper_trace, Scale};

/// The maximum KV capacity demanded per TTL window (`CCpUT`), bytes.
pub fn ccput(model: &ModelSpec, arrival_rate: f64, ttl_secs: f64) -> u64 {
    let dsput = (arrival_rate * ttl_secs) as u64;
    let ccps = model.kv_bytes(model.context_window as u64);
    dsput * ccps
}

/// Runs one capacity ratio cell.
pub fn run_cell(ratio: f64, scale: Scale) -> RunReport {
    let model = ModelSpec::llama2_13b();
    let ttl = 3600.0;
    // DSpUT cannot exceed the sessions the run actually serves.
    let dsput_cap = scale.sessions as f64 / 3600.0;
    let total = (ccput(&model, 1.0f64.min(dsput_cap), ttl) as f64 * ratio) as u64;
    // Keep the paper's DRAM share, floored at a few whole sessions
    // (session-granularity staging needs the room); the rest is disk.
    let max_session = model.kv_bytes(model.context_window as u64);
    let scaled_dram = (128_000_000_000f64 * scale.capacity_factor()) as u64;
    let dram = total.min(scaled_dram.max(5 * max_session));
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, model).with_warmup(scale.warmup_turns);
    cfg.store.ttl = Some(Dur::from_secs_f64(ttl));
    cfg.store.set_dram_bytes(dram.max(1_000_000_000));
    cfg.store.set_disk_bytes(total.saturating_sub(dram));
    run_trace(cfg, paper_trace(scale, 1.0))
}

/// Relative decoding throughput (the paper's Fig 23b panel): decode work
/// completed per second of makespan, in arbitrary units. Rises as hits
/// free the GPU from re-prefilling and the batch drains faster.
pub fn decode_throughput(r: &RunReport) -> f64 {
    if r.makespan_secs == 0.0 {
        return 0.0;
    }
    r.decode_busy_secs.max(1.0) / r.makespan_secs * 1000.0
}

/// Renders the Figure 23 table.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Figure 23: cache capacity requirement (LLaMA-13B, TTL = 1h)",
        &[
            "RCC/CCpUT",
            "hit rate",
            "paper hit",
            "decode rel. tput",
            "GPU busy h",
        ],
    );
    let paper = [(0.05, "-"), (0.10, "51%"), (0.25, "98%"), (0.50, "~98%")];
    for (ratio, paper_hit) in paper {
        let r = run_cell(ratio, scale);
        t.row(&[
            format!("{ratio:.2}"),
            pct(r.hit_rate()),
            paper_hit.into(),
            format!("{:.0}", decode_throughput(&r)),
            format!("{:.2}", r.busy_hours()),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "paper shape: the hit rate saturates at a quarter of full provisioning;\n\
         throughput saturates together with the hit rate.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ccput_formula() {
        let m = ModelSpec::llama2_13b();
        // 3600 sessions/hour × 4096 tokens × ~0.78 MB.
        let v = ccput(&m, 1.0, 3600.0);
        assert_eq!(v, 3600 * m.kv_bytes(4096));
    }

    /// Hit rate grows with the capacity ratio and saturates.
    #[test]
    fn hit_rate_saturates_with_capacity() {
        let tiny = Scale {
            sessions: 150,
            warmup_turns: 150,
        };
        let small = run_cell(0.02, tiny);
        let big = run_cell(0.5, tiny);
        assert!(big.hit_rate() >= small.hit_rate());
        assert!(big.hit_rate() > 0.8, "saturated hit {}", big.hit_rate());
    }
}
