//! Extension experiment (§3.4, last paragraph): selective KV preservation
//! via a token discarding list (TDL).
//!
//! The paper notes that CachedAttention "straightforwardly complies" with
//! KV compression schemes — attention sinks, heavy hitters — because the
//! stored KV carries no positional encoding: drop the TDL's rows and
//! re-embed fresh positions on load. This experiment demonstrates the
//! mechanism on the trained retrieval model:
//!
//! - the queried record sits in the *first* half of the context;
//! - plain front truncation (the default overflow policy) drops it, so
//!   the model cannot answer;
//! - TDL truncation drops the same *number* of tokens but selects
//!   unimportant records (importance oracle standing in for H2O scores),
//!   keeping the queried record — and the answer survives.

use metrics::table::{pct, Table};
use tinyllm::corpus::retrieval_task;
use tinyllm::{argmax, Model, PeMode};

use crate::experiments::tab12::{train_retrieval, Size, RETRIEVAL_DROP, RETRIEVAL_PAIRS};

/// How the overflowing context is reduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Reduction {
    /// No reduction: the full context (upper bound).
    None,
    /// Drop the oldest `RETRIEVAL_DROP` tokens (the default policy).
    FrontTruncate,
    /// Drop the same number of tokens chosen by the importance oracle:
    /// whole unimportant records, never the queried one.
    Tdl,
}

impl Reduction {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Reduction::None => "full context",
            Reduction::FrontTruncate => "front truncation",
            Reduction::Tdl => "TDL (keep important)",
        }
    }
}

/// Retrieval accuracy under a reduction scheme, asking about records in
/// the first (truncation-exposed) half.
pub fn accuracy(m: &Model, reduction: Reduction, episodes: usize) -> f64 {
    let vocab = m.cfg.vocab;
    let n_pairs = RETRIEVAL_PAIRS;
    let early = n_pairs / 2 - 1;
    let mut hits = 0usize;
    for ep in 0..episodes {
        let ask = 1 + ep % early;
        let t = retrieval_task(vocab, n_pairs, ask, 90_000 + ep as u64);
        let (ctx, query_tail) = t.prompt.split_at(t.prompt.len() - 2);
        let mut cache = m.cache(PeMode::Decoupled);
        m.forward(ctx, &mut cache);
        match reduction {
            Reduction::None => {}
            Reduction::FrontTruncate => cache.truncate_front(RETRIEVAL_DROP),
            Reduction::Tdl => {
                // Importance oracle: records other than the queried one
                // are disposable. Drop whole records from the front,
                // skipping the queried one, until enough tokens are gone.
                let mut tdl = Vec::with_capacity(RETRIEVAL_DROP);
                let mut record = 0usize;
                while tdl.len() < RETRIEVAL_DROP && record < n_pairs {
                    if record != ask {
                        let base = record * 2;
                        tdl.extend([base, base + 1]);
                    }
                    record += 1;
                }
                tdl.truncate(RETRIEVAL_DROP);
                cache.discard(&tdl);
            }
        }
        let logits = m.forward(query_tail, &mut cache);
        if argmax(logits.last().expect("query emitted logits")) == t.answer {
            hits += 1;
        }
    }
    hits as f64 / episodes as f64
}

/// Renders the extension table.
pub fn run(steps: usize, episodes: usize) -> String {
    let mut t = Table::new(
        "Extension: TDL-based selective KV preservation (retrieval model, queried record in the truncated half)",
        &["model", "reduction", "accuracy"],
    );
    for size in [Size::S, Size::M] {
        let m = train_retrieval(size, steps, 777);
        for reduction in [Reduction::None, Reduction::FrontTruncate, Reduction::Tdl] {
            t.row(&[
                size.label().into(),
                reduction.label().into(),
                pct(accuracy(&m, reduction, episodes)),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "shape: front truncation destroys answers whose evidence was dropped;\n\
         TDL keeps the important record alive at the same compression ratio,\n\
         which only works because the stored KV is position-free (§3.4).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// TDL preserves retrieval accuracy that front truncation destroys.
    #[test]
    fn tdl_beats_front_truncation() {
        let m = train_retrieval(Size::S, 6_000, 777);
        let full = accuracy(&m, Reduction::None, 40);
        let front = accuracy(&m, Reduction::FrontTruncate, 40);
        let tdl = accuracy(&m, Reduction::Tdl, 40);
        // Chance is 1/8 = 12.5%: the model must retrieve clearly above
        // chance for the comparison to be meaningful. (Tiny 2-layer
        // models sit well below LLaMA's near-perfect retrieval; the
        // experiment is about the *shape*.)
        assert!(full > 0.2, "model failed to learn retrieval: {full}");
        assert!(
            tdl > front + 0.08,
            "TDL {tdl} should clearly exceed front truncation {front}"
        );
    }
}
