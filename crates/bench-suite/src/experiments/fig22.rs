//! Figure 22: context-overflow handling — decoupled KV truncation (CA)
//! vs coupled positional encodings (OF) that invalidate the cache
//! (§4.3.4).
//!
//! Paper: OF loses 17.6/41.5/18.1/18.4 percentage points of hit rate for
//! LLaMA-13B/65B/70B/Falcon-40B; LLaMA-65B suffers most because its 2K
//! window overflows on almost every session.

use engine::{run_trace, Mode, RunReport};
use metrics::table::{pct, Table};
use models::ModelSpec;

use crate::{paper_trace, Scale};

/// Runs CA and OF for one model (scale-proportional storage).
pub fn run_pair(model: ModelSpec, scale: Scale) -> (RunReport, RunReport) {
    let trace = paper_trace(scale, 1.0);
    let ca = run_trace(
        crate::scaled_config(Mode::CachedAttention, model.clone(), scale),
        trace.clone(),
    );
    let of = run_trace(
        crate::scaled_config(Mode::CoupledOverflow, model, scale),
        trace,
    );
    (ca, of)
}

/// Renders the Figure 22 table.
pub fn run(scale: Scale) -> String {
    let paper_drop = [0.176, 0.415, 0.181, 0.184];
    let mut t = Table::new(
        "Figure 22: context overflow impact (CA vs OF)",
        &[
            "model",
            "CA hit",
            "OF hit",
            "drop",
            "paper drop",
            "CA GPU h",
            "OF GPU h",
        ],
    );
    for (m, paper) in models::evaluation_models().into_iter().zip(paper_drop) {
        let name = m.name;
        let (ca, of) = run_pair(m, scale);
        t.row(&[
            name.to_string(),
            pct(ca.hit_rate()),
            pct(of.hit_rate()),
            pct(ca.hit_rate() - of.hit_rate()),
            pct(paper),
            format!("{:.2}", ca.busy_hours()),
            format!("{:.2}", of.busy_hours()),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            sessions: 120,
            warmup_turns: 120,
        }
    }

    /// OF loses hits on every model, worst on the 2K-window LLaMA-65B.
    #[test]
    fn overflow_invalidations_cost_hits() {
        let (ca13, of13) = run_pair(ModelSpec::llama2_13b(), tiny());
        let (ca65, of65) = run_pair(ModelSpec::llama1_65b(), tiny());
        let drop13 = ca13.hit_rate() - of13.hit_rate();
        let drop65 = ca65.hit_rate() - of65.hit_rate();
        assert!(drop13 > 0.0, "13B drop {drop13}");
        assert!(drop65 > drop13, "65B drop {drop65} vs 13B {drop13}");
        assert!(of65.store_stats.drops_invalidated > 0);
    }

    /// Lost hits cost GPU time.
    #[test]
    fn of_costs_gpu_time() {
        let (ca, of) = run_pair(ModelSpec::llama1_65b(), tiny());
        assert!(of.busy_hours() >= ca.busy_hours());
    }
}
