//! Extension experiment: KV compression in AttentionStore.
//!
//! §5 lists KV quantization/compression as orthogonal to CachedAttention;
//! this ablation quantifies the interaction. Compressing the *stored*
//! bytes (fp16 → int8 → int4) multiplies the effective store capacity and
//! divides transfer times, so on a capacity-constrained store the hit
//! rate rises and TTFT/GPU time fall — GPU compute is untouched.
//!
//! Setting: LLaMA-65B (the paper's most capacity-starved model, 2.5 MB of
//! KV per token) on a deliberately small 128G/1T store.

use engine::{run_trace, EngineConfig, Mode, RunReport};
use metrics::table::{pct, secs, Table};
use models::ModelSpec;

use crate::{paper_trace, Scale};

/// Runs one compression cell.
pub fn run_cell(ratio: f64, scale: Scale) -> RunReport {
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama1_65b())
        .with_warmup(scale.warmup_turns)
        .with_kv_compression(ratio);
    cfg.store.set_disk_bytes(1_000_000_000_000);
    run_trace(cfg, paper_trace(scale, 1.0))
}

/// Renders the compression sweep.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Extension: KV compression in AttentionStore (LLaMA-65B, 128G/1T)",
        &[
            "compression",
            "hit rate",
            "TTFT",
            "GPU busy h",
            "disk GB moved",
        ],
    );
    for (label, ratio) in [
        ("fp16 (1.0)", 1.0),
        ("int8 (0.5)", 0.5),
        ("int4 (0.25)", 0.25),
    ] {
        let r = run_cell(ratio, scale);
        t.row(&[
            label.into(),
            pct(r.hit_rate()),
            secs(r.ttft_mean()),
            format!("{:.2}", r.busy_hours()),
            format!(
                "{:.0}",
                (r.slow_read_bytes + r.slow_write_bytes) as f64 / 1e9
            ),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "shape: compression multiplies effective store capacity, so the\n\
         capacity-starved 65B configuration gains hit rate and loses TTFT.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Compression never hurts the hit rate and reduces disk traffic per
    /// cached byte.
    #[test]
    fn compression_helps_capacity_starved_store() {
        let tiny = Scale {
            sessions: 150,
            warmup_turns: 150,
        };
        let raw = run_cell(1.0, tiny);
        let int4 = run_cell(0.25, tiny);
        assert!(
            int4.hit_rate() >= raw.hit_rate(),
            "int4 {} vs raw {}",
            int4.hit_rate(),
            raw.hit_rate()
        );
        assert!(int4.h2d_bytes < raw.h2d_bytes.max(1));
    }
}
