//! One module per paper table/figure; each exposes `run(...) -> String`
//! returning the rendered comparison table. The `exp_*` binaries are thin
//! wrappers; `exp_all` renders everything into one report, sharing the
//! expensive end-to-end runs.

pub mod chaos;
pub mod cluster;
pub mod e2e;
pub mod ext_bursty;
pub mod ext_chunked;
pub mod ext_compression;
pub mod ext_tdl;
pub mod fig01;
pub mod fig02;
pub mod fig04;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod fig21;
pub mod fig22;
pub mod fig23;
pub mod fig24;
pub mod fig25;
pub mod scale;
pub mod sec24;
pub mod share;
pub mod slo;
pub mod tab12;
pub mod tiers;
pub mod watch;
