//! Robustness experiment: surviving a flash crowd with SLO-aware
//! admission control, the degradation ladder and queue-driven
//! autoscaling.
//!
//! `exp_slo` replays the ShareGPT workload with a deterministic
//! flash-crowd [`Surge`] window (arrivals at `factor ×` the base rate
//! for a fixed span of virtual time) against three serving policies on
//! the same 2-instance cluster:
//!
//! 1. **`fcfs static`** — FCFS admission, no overload control. The SLO
//!    policy only *measures* attainment (infinite inbox, infinite ladder
//!    thresholds), so the run is behaviour-identical to the pre-SLO
//!    engine while still reporting how many first tokens met the
//!    deadline.
//! 2. **`ladder static`** — EDF admission plus the degradation ladder
//!    (recompute-only → hard truncation → shed) on the same fixed fleet.
//! 3. **`ladder autoscale`** — the ladder plus queue-driven autoscaling
//!    between 2 and 6 instances with sustain + cooldown hysteresis.
//!
//! Every run consumes the byte-identical trace (the surge window is
//! deterministic, unlike `Burstiness`' random phase flips), so every
//! difference between rows is the overload policy. The table reports
//! TTFT-deadline attainment side by side with what each rung of the
//! ladder cost: shed turns, degraded recomputes, forced truncations and
//! the scaling timeline.

use engine::{
    run_cluster, AutoscalePolicy, ClusterConfig, ClusterReport, Mode, RouterKind, SloPolicy,
};
use metrics::table::{pct, Table};
use models::ModelSpec;
use sim::Dur;
use telemetry::{
    default_rules, run_cluster_with_windowed_telemetry, AlertEvent, HealthSignals, SloConfig,
    Telemetry, WindowSeries,
};
use workload::{Generator, ShareGptProfile, Surge, Trace};

use crate::{scaled_config, Scale, DEFAULT_SEED};

/// Default flash-crowd rate multiplier.
pub const DEFAULT_SURGE_FACTOR: f64 = 4.0;
/// Default TTFT deadline, seconds. Roomy enough that a healthy cluster
/// meets it even on a store miss (a long-history recompute prefill takes
/// low single-digit seconds); misses against it are queueing delay — the
/// signal overload control can actually act on.
pub const DEFAULT_TTFT_TARGET_SECS: f64 = 5.0;
/// Base session arrival rate, per second. Doubled from the paper's
/// 1.0/s so the surge multiplies a meaningful baseline load.
pub const BASE_ARRIVAL_RATE: f64 = 2.0;
/// When the crowd arrives / how long it stays, seconds of virtual time.
pub const SURGE_START_SECS: f64 = 30.0;
/// See [`SURGE_START_SECS`].
pub const SURGE_DURATION_SECS: f64 = 240.0;
/// Tumbling window width for the attached telemetry plane, seconds.
pub const DEFAULT_WINDOW_SECS: f64 = 30.0;
/// Instances every variant starts with.
pub const BASE_INSTANCES: usize = 2;
/// Autoscaler ceiling for the `ladder autoscale` variant.
pub const MAX_INSTANCES: usize = 6;

/// Builds the flash-crowd trace: the ShareGPT profile at
/// [`BASE_ARRIVAL_RATE`] with a `factor ×` surge over
/// `[SURGE_START_SECS, SURGE_START_SECS + SURGE_DURATION_SECS)` and an
/// explicit per-turn TTFT deadline of `target` stamped on every turn
/// (exercising the per-turn deadline plumbing rather than the
/// policy-default fallback).
pub fn surge_trace(scale: Scale, factor: f64, target: Dur) -> Trace {
    let profile = ShareGptProfile::default()
        .with_arrival_rate(BASE_ARRIVAL_RATE)
        .with_surge(Surge {
            start_secs: SURGE_START_SECS,
            duration_secs: SURGE_DURATION_SECS,
            factor,
        });
    let mut trace = Generator::new(profile, DEFAULT_SEED).trace(scale.sessions);
    for s in &mut trace.sessions {
        for t in &mut s.turns {
            t.ttft_deadline = Some(target);
        }
    }
    trace
}

/// The measurement-only policy behind the `fcfs static` baseline: SLO
/// accounting with FCFS order, an effectively unbounded inbox and
/// ladder thresholds that never breach, so the run serves exactly like
/// an SLO-free cluster while attainment is still measured.
pub fn measure_only(target: Dur) -> SloPolicy {
    let mut p = SloPolicy::new(target).with_fcfs();
    p.inbox_capacity = usize::MAX;
    p.degrade_queue_depth = f64::INFINITY;
    p.degrade_burn = f64::INFINITY;
    p
}

/// The full overload policy: EDF admission with the default starvation
/// guard, bounded inboxes and the degradation ladder.
pub fn ladder(target: Dur) -> SloPolicy {
    SloPolicy::new(target)
}

/// [`ladder`] plus queue-driven autoscaling between [`BASE_INSTANCES`]
/// and [`MAX_INSTANCES`].
pub fn autoscaled(target: Dur) -> SloPolicy {
    // Scale up well before the ladder's depth rungs engage (4.0 vs the
    // 8.0 degrade threshold) and scale down only on a truly idle fleet,
    // so capacity leads degradation instead of chasing it.
    let a = AutoscalePolicy {
        up_queue_depth: 4.0,
        down_queue_depth: 0.5,
        cooldown: Dur::from_secs_f64(20.0),
        ..AutoscalePolicy::default()
    }
    .with_bounds(BASE_INSTANCES, MAX_INSTANCES);
    ladder(target).with_autoscale(a)
}

/// One policy variant's outcome.
pub struct SloRow {
    /// Variant label as it appears in the table.
    pub label: &'static str,
    /// The cluster run report.
    pub report: ClusterReport,
}

/// The comparison plus the telemetry artifacts of the autoscaled run.
pub struct SloResults {
    /// One row per policy variant, baseline first.
    pub rows: Vec<SloRow>,
    /// Full telemetry of the `ladder autoscale` run (trace + scalar hub
    /// + windowed hub).
    pub telemetry: Telemetry,
    /// The autoscaled run's sealed window series.
    pub series: WindowSeries,
    /// Per-window health signals scored against the TTFT target.
    pub signals: HealthSignals,
    /// Alert transitions the stock rule set produced on the autoscaled
    /// run.
    pub alerts: Vec<AlertEvent>,
}

/// The engine config every variant shares: CachedAttention with
/// scale-proportional storage and no metric warmup — the surge must hit
/// measured turns, and overload robustness is not a store-warmup
/// question.
pub fn slo_config(scale: Scale) -> engine::EngineConfig {
    let mut cfg = scaled_config(Mode::CachedAttention, ModelSpec::llama2_13b(), scale);
    cfg.warmup_turns = 0;
    cfg
}

/// Runs the three variants on the byte-identical surge trace.
pub fn compute(scale: Scale, surge_factor: f64, target_secs: f64) -> SloResults {
    let target = Dur::from_secs_f64(target_secs);
    let trace = surge_trace(scale, surge_factor, target);
    let cluster = |slo: SloPolicy| {
        ClusterConfig::new(
            slo_config(scale),
            BASE_INSTANCES,
            RouterKind::SessionAffinity,
        )
        .with_slo(slo)
    };

    let mut rows = Vec::new();
    rows.push(SloRow {
        label: "fcfs static",
        report: run_cluster(cluster(measure_only(target)), trace.clone()),
    });
    rows.push(SloRow {
        label: "ladder static",
        report: run_cluster(cluster(ladder(target)), trace.clone()),
    });
    let (report, telemetry) = run_cluster_with_windowed_telemetry(
        cluster(autoscaled(target)),
        trace,
        DEFAULT_WINDOW_SECS,
    );
    rows.push(SloRow {
        label: "ladder autoscale",
        report,
    });
    let series = telemetry
        .window_series()
        .expect("windowed telemetry always carries a series");
    let signals = HealthSignals::from_series(&series, &SloConfig::new(target_secs));
    let alerts = signals.evaluate(&default_rules(DEFAULT_WINDOW_SECS));
    SloResults {
        rows,
        telemetry,
        series,
        signals,
        alerts,
    }
}

/// Renders the comparison table.
pub fn render(r: &SloResults, surge_factor: f64, target_secs: f64) -> String {
    let mut t = Table::new(
        format!(
            "Flash crowd ({surge_factor:.0}x for 240s): SLO attainment vs. overload policy \
             (TTFT deadline {target_secs:.1}s, {BASE_INSTANCES} base instances)"
        ),
        &[
            "policy",
            "attain",
            "TTFT ms",
            "makespan s",
            "shed",
            "degraded",
            "hard_trunc",
            "rungs",
            "scale +/-",
            "peak inst",
        ],
    );
    for row in &r.rows {
        let o = &row.report.overload;
        t.row(&[
            row.label.to_string(),
            pct(o.attainment()),
            format!("{:.1}", row.report.aggregate.ttft_mean() * 1e3),
            format!("{:.1}", row.report.aggregate.makespan_secs),
            o.turns_shed.to_string(),
            o.degraded_recomputes.to_string(),
            o.hard_truncations.to_string(),
            o.level_transitions.to_string(),
            format!("{}/{}", o.scale_ups, o.scale_downs),
            o.peak_instances.to_string(),
        ]);
    }
    t.render()
}

/// Runs the comparison at `scale` and renders the table.
pub fn run(scale: Scale, surge_factor: f64, target_secs: f64) -> String {
    render(
        &compute(scale, surge_factor, target_secs),
        surge_factor,
        target_secs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scale {
        Scale {
            sessions: 240,
            warmup_turns: 0,
        }
    }

    /// The acceptance property at test scale: under a >= 4x flash crowd
    /// the autoscaled ladder holds strictly higher TTFT-deadline
    /// attainment than static FCFS, sheds carry typed rejections, and
    /// nobody loses admitted turns.
    #[test]
    fn autoscaled_ladder_beats_static_fcfs_under_the_crowd() {
        let r = compute(small(), DEFAULT_SURGE_FACTOR, DEFAULT_TTFT_TARGET_SECS);
        let by_label = |l: &str| {
            &r.rows
                .iter()
                .find(|row| row.label == l)
                .expect("variant present")
                .report
        };
        let fcfs = by_label("fcfs static");
        let auto = by_label("ladder autoscale");
        // The baseline genuinely overloads (otherwise the comparison is
        // vacuous) and behaves like a pre-SLO cluster otherwise.
        assert!(
            fcfs.overload.attainment() < 1.0,
            "the surge must overload the static FCFS baseline"
        );
        assert_eq!(fcfs.overload.turns_shed, 0);
        assert_eq!(fcfs.overload.level_transitions, 0);
        assert_eq!(fcfs.aggregate.sessions_done.get(), 240);
        // The headline acceptance comparison.
        assert!(
            auto.overload.attainment() > fcfs.overload.attainment(),
            "autoscaled ladder {:.3} must beat static FCFS {:.3}",
            auto.overload.attainment(),
            fcfs.overload.attainment()
        );
        assert!(
            auto.overload.scale_ups > 0,
            "the crowd must trigger scale-up"
        );
        assert!(auto.overload.peak_instances > BASE_INSTANCES as u64);
        // Sessions are conserved: every session either retires all its
        // turns or ends at a typed shed.
        let shed_sessions = auto.overload.turns_shed;
        assert_eq!(
            auto.aggregate.sessions_done.get() + shed_sessions,
            240,
            "sessions neither lost nor double-counted"
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = compute(small(), DEFAULT_SURGE_FACTOR, DEFAULT_TTFT_TARGET_SECS);
        let b = compute(small(), DEFAULT_SURGE_FACTOR, DEFAULT_TTFT_TARGET_SECS);
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.report.overload, y.report.overload);
            assert_eq!(
                x.report.aggregate.makespan_secs,
                y.report.aggregate.makespan_secs
            );
        }
        assert_eq!(a.alerts.len(), b.alerts.len());
    }

    #[test]
    fn render_carries_the_headline_columns() {
        let r = compute(small(), DEFAULT_SURGE_FACTOR, DEFAULT_TTFT_TARGET_SECS);
        let text = render(&r, DEFAULT_SURGE_FACTOR, DEFAULT_TTFT_TARGET_SECS);
        assert!(text.contains("attain"));
        assert!(text.contains("fcfs static"));
        assert!(text.contains("ladder autoscale"));
    }
}
