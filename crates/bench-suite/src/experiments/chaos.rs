//! Chaos sweep: graceful degradation under scripted faults.
//!
//! Not a paper figure — the paper assumes healthy hardware — but the
//! natural robustness question its tiered store raises: when the slow
//! tier misbehaves (read/write errors, silent corruption), links stall,
//! DRAM comes under outside pressure and an instance dies outright, the
//! cluster must keep serving every turn, degrading hit turns to
//! re-prefills instead of failing them. This experiment sweeps a fault
//! *intensity* knob from 0 (healthy) upward on a 2-instance cluster and
//! reports TTFT, hit rate and the fault-path counters side by side, so
//! the cost of each degradation rung is visible: retries show up as
//! backoff-inflated TTFT, corruption and exhausted retries as recompute
//! fallbacks (lost hits), the crash as rerouted turns.

use engine::{run_cluster, ClusterConfig, ClusterReport, Mode, RouterKind};
use metrics::table::{pct, Table};
use models::ModelSpec;
use sim::{FaultPlan, Time};

use crate::{paper_trace, scaled_config, Scale};

/// Builds the scripted fault plan at `intensity` in `[0, 1]`: every
/// fault family scales with the knob, and `0` yields an empty plan (the
/// run is then byte-identical to a fault-free one). The schedule targets
/// the first minute of virtual time so it lands inside even small runs:
/// a slow-tier read slowdown, a write stall, SSD error/corruption rates,
/// a DRAM pressure spike, and — at `intensity >= 0.5` — instance 1
/// crashing at t=10s.
pub fn chaos_plan(seed: u64, intensity: f64) -> FaultPlan {
    assert!(
        (0.0..=1.0).contains(&intensity),
        "intensity must be in [0, 1], got {intensity}"
    );
    let mut plan = FaultPlan::new(seed);
    if intensity <= 0.0 {
        return plan;
    }
    let window_end = Time::from_secs_f64(2.0 + 28.0 * intensity);
    plan = plan
        .with_link_slowdown(
            "slow-rd",
            Time::from_secs_f64(2.0),
            window_end,
            1.0 + 4.0 * intensity,
        )
        .with_link_stall(
            "slow-wr",
            Time::from_secs_f64(5.0),
            Time::from_secs_f64(5.0 + 8.0 * intensity),
        )
        .with_ssd_errors(0.05 * intensity, 0.05 * intensity, 0.02 * intensity)
        .with_dram_pressure(Time::from_secs_f64(8.0), 0.5 * intensity);
    if intensity >= 0.5 {
        plan = plan.with_crash(1, Time::from_secs_f64(10.0));
    }
    plan
}

/// The sweep results: one 2-instance cluster run per intensity.
pub struct ChaosResults {
    /// `(intensity, report)` per run.
    pub rows: Vec<(f64, ClusterReport)>,
}

/// Runs the sweep: the same workload and store sizing at every
/// intensity, so every difference between rows is injected faults.
pub fn compute(scale: Scale, intensities: &[f64]) -> ChaosResults {
    let model = ModelSpec::llama2_13b();
    let mut rows = Vec::new();
    for &k in intensities {
        let cfg = scaled_config(Mode::CachedAttention, model.clone(), scale);
        let trace = paper_trace(scale, 1.0);
        let cluster = ClusterConfig::new(cfg, 2, RouterKind::SessionAffinity)
            .with_faults(chaos_plan(crate::DEFAULT_SEED, k));
        rows.push((k, run_cluster(cluster, trace)));
    }
    ChaosResults { rows }
}

/// Renders the sweep as a comparison table.
pub fn render(r: &ChaosResults) -> String {
    let mut t = Table::new(
        "Chaos sweep: fault intensity vs. degraded-mode serving (2 instances)",
        &[
            "intensity",
            "makespan s",
            "TTFT ms",
            "hit rate",
            "retries r/w",
            "fail r/w",
            "corrupt",
            "recompute",
            "rerouted",
        ],
    );
    for (k, rep) in &r.rows {
        let f = &rep.faults;
        t.row(&[
            format!("{k:.2}"),
            format!("{:.1}", rep.aggregate.makespan_secs),
            format!("{:.1}", rep.aggregate.ttft_mean() * 1e3),
            pct(rep.aggregate.hit_rate()),
            format!("{}/{}", f.read_retries, f.write_retries),
            format!("{}/{}", f.read_failures, f.write_failures),
            f.corruptions_detected.to_string(),
            f.recompute_fallbacks.to_string(),
            f.turns_rerouted.to_string(),
        ]);
    }
    t.render()
}

/// Runs the sweep at `scale` and renders the table.
pub fn run(scale: Scale, intensities: &[f64]) -> String {
    render(&compute(scale, intensities))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Intensity 0 is an empty plan; the full-intensity plan carries
    /// every fault family including the crash.
    #[test]
    fn plan_scales_with_intensity() {
        assert!(chaos_plan(1, 0.0).is_empty());
        let mild = chaos_plan(1, 0.25);
        assert!(!mild.is_empty());
        assert!(
            mild.crashes.is_empty(),
            "mild plans must not crash instances"
        );
        let full = chaos_plan(1, 1.0);
        assert_eq!(full.crashes.len(), 1);
        assert_eq!(full.link_faults.len(), 2);
        assert!(full.ssd.read_error_rate > mild.ssd.read_error_rate);
    }

    /// A small sweep completes every session at every intensity, the
    /// healthy row reports zero fault activity, and the faulted rows
    /// report the activity the plan scripts.
    #[test]
    fn chaos_sweep_serves_everything_at_small_scale() {
        let scale = Scale {
            sessions: 40,
            warmup_turns: 0,
        };
        let r = compute(scale, &[0.0, 1.0]);
        assert_eq!(r.rows.len(), 2);
        for (k, rep) in &r.rows {
            assert_eq!(
                rep.aggregate.sessions_done.get(),
                40,
                "intensity {k}: sessions lost"
            );
        }
        let healthy = &r.rows[0].1;
        assert!(!healthy.faults.any(), "healthy run reported fault activity");
        let chaotic = &r.rows[1].1;
        assert_eq!(chaotic.faults.instance_crashes, 1);
        assert!(chaotic.faults.any());
        let table = render(&r);
        assert!(table.contains("intensity"));
        assert!(table.contains("recompute"));
    }
}
