//! Figure 4: recomputation inefficiency. (a) Historical vs new tokens per
//! turn; (b) GPU time to prefill all tokens vs only the new ones
//! (Mistral-7B on one A100, as in the paper).

use metrics::table::{pct, Table};
use models::{ClusterSpec, CostModel, ModelSpec};
use workload::stats;

use crate::{paper_trace, Scale};

/// Renders both panels.
pub fn run(sessions: usize) -> String {
    let trace = paper_trace(
        Scale {
            sessions,
            warmup_turns: 0,
        },
        1.0,
    );
    let rows = stats::historical_vs_new(&trace, 20);
    let m = ModelSpec::mistral_7b();
    let c = ClusterSpec::paper_testbed().with_gpus(1);
    let cm = CostModel::paper_system();
    let mut t = Table::new(
        "Figure 4: historical vs new tokens and the prefill cost of recomputation (Mistral-7B, 1xA100)",
        &[
            "turn",
            "hist tokens",
            "new tokens",
            "hist share",
            "prefill all (ms)",
            "prefill new (ms)",
        ],
    );
    for (turn, hist, new) in rows.iter().step_by(2) {
        let hist_t = *hist as u64;
        let new_t = (*new as u64).max(1);
        let all = cm.prefill_time(&m, &c, hist_t + new_t, 0).as_millis_f64();
        let only_new = cm.prefill_time(&m, &c, new_t, hist_t).as_millis_f64();
        t.row(&[
            turn.to_string(),
            format!("{hist:.0}"),
            format!("{new:.0}"),
            pct(hist / (hist + new).max(1.0)),
            format!("{all:.0}"),
            format!("{only_new:.0}"),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "paper shape: historical share exceeds 90-99% in later turns; prefilling\n\
         only the new tokens is an order of magnitude cheaper.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn historical_share_grows() {
        let s = super::run(3_000);
        assert!(s.contains("hist share"));
    }
}
