//! Cross-session prefix sharing: per-session vs. block keying.
//!
//! Not a paper figure — the paper keys the store by session (§3.3), so
//! two conversations opening with the same system prompt store the same
//! KV twice and neither can reuse the other's prefill. This experiment
//! asks what content-addressed block keying buys on workloads where the
//! sharing is real: fleet system prompts, agentic fan-out, and Zipf-hot
//! RAG documents ([`PrefixScenario`]). Each scenario runs twice at the
//! *same tier capacity* — once with the paper's per-session keying, once
//! with [`KeyingMode::ContentAddressed`] — so every difference between a
//! scenario's two rows is the keying.
//!
//! Columns: the fast-tier hit rate (consults answered from DRAM —
//! block keying turns first-turn prefills of a shared prefix into fast
//! hits, which per-session keying cannot), TTFT p50/p95, the save-side
//! dedup ratio (fraction of chunks that resolved to an already-stored
//! node), physical bytes the dedup avoided writing, and the effective
//! capacity factor (logical bytes stored per physical byte written).
//! Per-session rows show zeros in the dedup columns by construction —
//! the mode has no chain ledger to share.

use engine::{ClusterConfig, ClusterReport, Mode, RouterKind};
use metrics::table::Table;
use models::ModelSpec;
use store::KeyingMode;
use telemetry::{run_cluster_with_telemetry, MetricsSnapshot, Telemetry};
use workload::{PrefixProfile, PrefixScenario, ShareGptProfile, Trace};

use crate::{scaled_config, Scale, DEFAULT_SEED};

/// One sharing shape in the sweep.
pub struct ShareCase {
    /// Row label (the scenario's own label).
    pub label: &'static str,
    /// The sharing shape stamped on the workload.
    pub scenario: PrefixScenario,
}

/// The three sharing shapes the experiment sweeps: a fleet of four
/// 1K-token system prompts, eight-wide agentic fan-out from 2K-token
/// parent contexts, and RAG over 64 Zipf(1.1)-hot 1K-token documents.
pub fn share_cases() -> Vec<ShareCase> {
    vec![
        ShareCase {
            label: "system_prompt",
            scenario: PrefixScenario::SharedSystemPrompt {
                pools: 4,
                prompt_tokens: 1024,
            },
        },
        ShareCase {
            label: "agentic_fanout",
            scenario: PrefixScenario::AgenticFanOut {
                children: 8,
                parent_tokens: 2048,
            },
        },
        ShareCase {
            label: "rag_documents",
            scenario: PrefixScenario::RagDocuments {
                docs: 64,
                doc_tokens: 1024,
                zipf_s: 1.1,
            },
        },
    ]
}

/// Builds the stamped workload for one scenario at `scale`.
pub fn share_trace(scenario: PrefixScenario, scale: Scale) -> Trace {
    PrefixProfile::new(ShareGptProfile::default(), scenario).trace(DEFAULT_SEED, scale.sessions)
}

/// One (scenario, keying) measured row.
pub struct ShareRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Keying-mode label (`per_session` / `content_addressed`).
    pub keying: &'static str,
    /// Turns whose prefix consult was answered from the fastest tier,
    /// over all turns. The denominator is turns — not consults — so the
    /// modes compare fairly: per-session keying never consults on a
    /// first turn (nothing could match), block keying does and can hit;
    /// both count the turn.
    pub fast_reuse_per_turn: f64,
    /// Median service TTFT, milliseconds.
    pub ttft_p50_ms: f64,
    /// p95 service TTFT, milliseconds.
    pub ttft_p95_ms: f64,
    /// Save-side chunks resolved to already-stored nodes, as a fraction.
    pub dedup_ratio: f64,
    /// Physical bytes dedup avoided writing.
    pub bytes_saved: u64,
    /// Logical bytes stored per physical byte written.
    pub effective_capacity: f64,
    /// Sessions the run completed.
    pub sessions_done: u64,
}

/// The sweep results: for each scenario, the per-session row then the
/// content-addressed row.
pub struct ShareResults {
    /// Rows in [`share_cases`] order, two per scenario.
    pub rows: Vec<ShareRow>,
}

/// Runs one scenario under one keying mode at scale-proportional
/// capacity; both keying modes of a scenario get byte-identical tier
/// capacities and the identical stamped trace.
pub fn run_one(
    scenario: PrefixScenario,
    keying: KeyingMode,
    scale: Scale,
) -> (ClusterReport, Telemetry) {
    let model = ModelSpec::llama2_13b();
    let mut cfg = scaled_config(Mode::CachedAttention, model, scale);
    cfg.store.keying = keying;
    let trace = share_trace(scenario, scale);
    let cluster = ClusterConfig::new(cfg, 1, RouterKind::SessionAffinity);
    run_cluster_with_telemetry(cluster, trace)
}

fn row_from(
    label: &'static str,
    keying: KeyingMode,
    report: &ClusterReport,
    snap: &MetricsSnapshot,
) -> ShareRow {
    ShareRow {
        scenario: label,
        keying: keying.label(),
        fast_reuse_per_turn: if snap.turns_arrived == 0 {
            0.0
        } else {
            snap.hits_fast as f64 / snap.turns_arrived as f64
        },
        ttft_p50_ms: snap.ttft_p50_secs.unwrap_or(0.0) * 1e3,
        ttft_p95_ms: snap.ttft_p95_secs.unwrap_or(0.0) * 1e3,
        dedup_ratio: report.dedup.dedup_ratio(),
        bytes_saved: report.dedup.bytes_saved,
        effective_capacity: report.dedup.effective_capacity_factor(),
        sessions_done: report.aggregate.sessions_done.get(),
    }
}

/// Runs the sweep: every scenario under both keying modes.
pub fn compute(scale: Scale) -> ShareResults {
    let mut rows = Vec::new();
    for case in share_cases() {
        for keying in [KeyingMode::PerSession, KeyingMode::ContentAddressed] {
            let (report, tel) = run_one(case.scenario, keying, scale);
            rows.push(row_from(case.label, keying, &report, &tel.snapshot()));
        }
    }
    ShareResults { rows }
}

/// Renders the sweep as a comparison table, the per-session and
/// content-addressed rows of each scenario adjacent.
pub fn render(r: &ShareResults) -> String {
    let mut t = Table::new(
        "Prefix sharing: per-session vs. content-addressed keying (equal capacity)",
        &[
            "scenario",
            "keying",
            "fast reuse/turn",
            "TTFT p50 ms",
            "TTFT p95 ms",
            "dedup ratio",
            "bytes saved",
            "capacity x",
        ],
    );
    for row in &r.rows {
        t.row(&[
            row.scenario.to_string(),
            row.keying.to_string(),
            format!("{:.3}", row.fast_reuse_per_turn),
            format!("{:.1}", row.ttft_p50_ms),
            format!("{:.1}", row.ttft_p95_ms),
            format!("{:.3}", row.dedup_ratio),
            format!("{:.2}GB", row.bytes_saved as f64 / 1e9),
            format!("{:.2}", row.effective_capacity),
        ]);
    }
    t.render()
}

/// Runs the sweep at `scale` and renders the table.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The case list covers the three sharing shapes.
    #[test]
    fn cases_cover_the_sharing_shapes() {
        let cases = share_cases();
        assert_eq!(cases.len(), 3);
        let labels: Vec<&str> = cases.iter().map(|c| c.label).collect();
        assert_eq!(labels, ["system_prompt", "agentic_fanout", "rag_documents"]);
        for c in &cases {
            assert_eq!(c.label, c.scenario.label());
        }
    }

    /// A small sweep serves every session under both keying modes, the
    /// per-session rows report zero dedup (the mode has no ledger), and
    /// every content-addressed row actually dedups.
    #[test]
    fn sweep_dedups_only_under_block_keying() {
        let scale = Scale {
            sessions: 40,
            warmup_turns: 0,
        };
        let r = compute(scale);
        assert_eq!(r.rows.len(), 6);
        for pair in r.rows.chunks(2) {
            let (per, ca) = (&pair[0], &pair[1]);
            assert_eq!(per.keying, "per_session");
            assert_eq!(ca.keying, "content_addressed");
            assert_eq!(per.scenario, ca.scenario);
            assert_eq!(per.sessions_done, 40, "{}: sessions lost", per.scenario);
            assert_eq!(ca.sessions_done, 40, "{}: sessions lost", ca.scenario);
            assert_eq!(per.dedup_ratio, 0.0);
            assert_eq!(per.bytes_saved, 0);
            assert_eq!(per.effective_capacity, 1.0);
            assert!(
                ca.dedup_ratio > 0.0,
                "{}: block keying found no shared chunks",
                ca.scenario
            );
            assert!(ca.bytes_saved > 0);
            assert!(ca.effective_capacity > 1.0);
        }
        let table = render(&r);
        assert!(table.contains("content_addressed"));
        assert!(table.contains("capacity x"));
    }

    /// The headline claim at equal capacity: on every shared-prefix
    /// scenario, block keying's fast-tier hit rate is at least the
    /// per-session rate and its TTFT p95 is no worse; at least one
    /// scenario strictly improves both.
    #[test]
    fn block_keying_wins_at_equal_capacity() {
        let scale = Scale {
            sessions: 60,
            warmup_turns: 0,
        };
        let r = compute(scale);
        let mut strict = 0;
        for pair in r.rows.chunks(2) {
            let (per, ca) = (&pair[0], &pair[1]);
            assert!(
                ca.fast_reuse_per_turn >= per.fast_reuse_per_turn,
                "{}: fast reuse per turn regressed ({:.3} < {:.3})",
                ca.scenario,
                ca.fast_reuse_per_turn,
                per.fast_reuse_per_turn
            );
            assert!(
                ca.ttft_p95_ms <= per.ttft_p95_ms,
                "{}: TTFT p95 regressed ({:.1} > {:.1})",
                ca.scenario,
                ca.ttft_p95_ms,
                per.ttft_p95_ms
            );
            if ca.fast_reuse_per_turn > per.fast_reuse_per_turn && ca.ttft_p95_ms < per.ttft_p95_ms
            {
                strict += 1;
            }
        }
        assert!(strict > 0, "no scenario strictly improved");
    }
}
