//! The end-to-end four-model comparison (Figures 13–17).
//!
//! One expensive run per (model, mode) pair feeds five renderers; the
//! `exp_all` binary computes the runs once and renders everything.

use engine::RunReport;
use metrics::aws::PriceSheet;
use metrics::table::{pct, secs, speedup, Table};
use models::ModelSpec;

use crate::{run_all_models, Scale};

/// The shared end-to-end results.
pub struct E2eResults {
    /// `(model, CA report, RE report)` per evaluation model.
    pub runs: Vec<(ModelSpec, RunReport, RunReport)>,
}

/// Executes the four-model CA/RE runs at `scale`.
pub fn compute(scale: Scale) -> E2eResults {
    E2eResults {
        runs: run_all_models(scale),
    }
}

/// Figure 13: AttentionStore cache hit rates per model.
pub fn fig13(r: &E2eResults) -> String {
    let paper = [0.86, 0.71, 0.89, 0.90];
    let mut t = Table::new(
        "Figure 13: KV cache hit rate",
        &["model", "hit rate", "DRAM share", "disk share", "paper"],
    );
    for ((m, ca, _), p) in r.runs.iter().zip(paper) {
        t.row(&[
            m.name.to_string(),
            pct(ca.hit_rate()),
            pct(ca.fast_hit_rate()),
            pct(ca.slow_hit_rate()),
            pct(p),
        ]);
    }
    t.render()
}

/// Figure 14: time to first token.
pub fn fig14(r: &E2eResults) -> String {
    let paper = [0.85, 0.61, 0.87, 0.86];
    let mut t = Table::new(
        "Figure 14: time to first token (mean service latency)",
        &[
            "model",
            "RE TTFT",
            "CA TTFT",
            "reduction",
            "paper reduction",
        ],
    );
    for ((m, ca, re), p) in r.runs.iter().zip(paper) {
        let reduction = 1.0 - ca.ttft_mean() / re.ttft_mean();
        t.row(&[
            m.name.to_string(),
            secs(re.ttft_mean()),
            secs(ca.ttft_mean()),
            pct(reduction),
            pct(p),
        ]);
    }
    t.render()
}

/// Figure 15: prompt prefilling throughput.
pub fn fig15(r: &E2eResults) -> String {
    let paper = [6.8, 2.6, 7.8, 7.2];
    let mut t = Table::new(
        "Figure 15: prefilling throughput (prompt tokens per prefill-GPU-second)",
        &["model", "RE tok/s", "CA tok/s", "speedup", "paper speedup"],
    );
    for ((m, ca, re), p) in r.runs.iter().zip(paper) {
        t.row(&[
            m.name.to_string(),
            format!("{:.0}", re.prefill_throughput()),
            format!("{:.0}", ca.prefill_throughput()),
            speedup(ca.prefill_throughput() / re.prefill_throughput()),
            speedup(p),
        ]);
    }
    t.render()
}

/// Figure 16: end-to-end GPU time.
pub fn fig16(r: &E2eResults) -> String {
    let paper = [4.0, 1.9, 3.3, 3.4];
    let mut t = Table::new(
        "Figure 16: GPU time to finish the workload (busy hours)",
        &[
            "model",
            "RE hours",
            "CA hours",
            "speedup",
            "paper speedup",
            "RE makespan h",
            "CA makespan h",
        ],
    );
    for ((m, ca, re), p) in r.runs.iter().zip(paper) {
        t.row(&[
            m.name.to_string(),
            format!("{:.2}", re.busy_hours()),
            format!("{:.2}", ca.busy_hours()),
            speedup(re.busy_hours() / ca.busy_hours()),
            speedup(p),
            format!("{:.2}", re.gpu_hours()),
            format!("{:.2}", ca.gpu_hours()),
        ]);
    }
    t.render()
}

/// Figure 17: end-to-end inference cost.
pub fn fig17(r: &E2eResults) -> String {
    let paper_saving = [0.70, 0.43, 0.66, 0.68];
    let paper_storage = [0.164, 0.09, 0.09, 0.09];
    let prices = PriceSheet::default();
    let mut t = Table::new(
        "Figure 17: inference cost (AWS on-demand pricing)",
        &[
            "model",
            "RE $",
            "CA $",
            "saving",
            "paper saving",
            "CA storage share",
            "paper share",
        ],
    );
    for (i, (m, ca, re)) in r.runs.iter().enumerate() {
        let n_gpus = if m.n_params <= 14_000_000_000 { 2 } else { 4 };
        let ca_cost = ca.cost(&prices, n_gpus, 128.0, 10_000.0);
        let re_cost = re.cost(&prices, n_gpus, 0.0, 0.0);
        t.row(&[
            m.name.to_string(),
            format!("{:.2}", re_cost.total()),
            format!("{:.2}", ca_cost.total()),
            pct(ca_cost.saving_vs(&re_cost)),
            pct(paper_saving[i]),
            pct(ca_cost.storage_fraction()),
            pct(paper_storage[i]),
        ]);
    }
    t.render()
}

/// Runs the shared computation and renders Figures 13–17.
pub fn run(scale: Scale) -> String {
    let r = compute(scale);
    let mut out = String::new();
    for s in [fig13(&r), fig14(&r), fig15(&r), fig16(&r), fig17(&r)] {
        out.push_str(&s);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One small end-to-end run feeds all five figures and shows CA
    /// winning on every headline metric.
    #[test]
    fn e2e_shapes_hold_at_small_scale() {
        let r = compute(Scale {
            sessions: 150,
            warmup_turns: 150,
        });
        for (m, ca, re) in &r.runs {
            assert!(ca.hit_rate() > 0.5, "{}: hit {}", m.name, ca.hit_rate());
            assert!(
                ca.ttft_mean() < re.ttft_mean(),
                "{}: TTFT CA {} RE {}",
                m.name,
                ca.ttft_mean(),
                re.ttft_mean()
            );
            assert!(
                ca.prefill_throughput() > re.prefill_throughput(),
                "{}",
                m.name
            );
            assert!(ca.busy_hours() < re.busy_hours(), "{}", m.name);
        }
        let all = [fig13(&r), fig14(&r), fig15(&r), fig16(&r), fig17(&r)];
        for s in &all {
            assert!(s.contains("LLaMA-70B"));
        }
    }
}
