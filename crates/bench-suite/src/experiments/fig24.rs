//! Figure 24: caching storage mediums — HBM only vs HBM+DRAM vs
//! DRAM+SSD (§4.3.7).
//!
//! Paper: a 10 GB HBM cache alone hits ~0%; adding 128 GB DRAM reaches
//! 3.4/1.7/7.7/19.1% (13B/65B/70B/Falcon); the full DRAM+SSD hierarchy
//! reaches 86/71/89/90%.

use engine::{run_trace, EngineConfig, Medium, Mode, RunReport};
use metrics::table::{pct, Table};
use models::ModelSpec;

use crate::{paper_trace, Scale};

/// The three storage configurations of the figure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediumConfig {
    /// 10 GB of spare HBM only.
    HbmOnly,
    /// 10 GB HBM + 128 GB DRAM.
    HbmDram,
    /// 128 GB DRAM + 10 TB SSD (full CachedAttention).
    DramDisk,
}

impl MediumConfig {
    fn label(self) -> &'static str {
        match self {
            MediumConfig::HbmOnly => "HBM(10G)",
            MediumConfig::HbmDram => "HBM+DRAM(10G/128G)",
            MediumConfig::DramDisk => "DRAM+SSD(128G/10T)",
        }
    }
}

/// Runs one (model, medium) cell.
pub fn run_cell(model: ModelSpec, medium: MediumConfig, scale: Scale) -> RunReport {
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, model).with_warmup(scale.warmup_turns);
    // Scale-proportional storage, like the other end-to-end experiments,
    // floored at whole sessions (the store moves sessions atomically).
    let f = scale.capacity_factor();
    let max_session = cfg.model.kv_bytes(cfg.model.context_window as u64);
    let scaled = |bytes: u64| (bytes as f64 * f) as u64;
    match medium {
        MediumConfig::HbmOnly => {
            cfg.medium = Medium::HbmOnly;
            cfg.store
                .set_dram_bytes(scaled(10_000_000_000).max(max_session));
            cfg.store.set_disk_bytes(0);
        }
        MediumConfig::HbmDram => {
            cfg.medium = Medium::HbmDram;
            cfg.store
                .set_dram_bytes(scaled(10_000_000_000).max(max_session));
            cfg.store
                .set_disk_bytes(scaled(128_000_000_000).max(5 * max_session));
        }
        MediumConfig::DramDisk => {
            cfg.medium = Medium::DramDisk;
            cfg.store
                .set_dram_bytes(scaled(cfg.store.dram_bytes()).max(5 * max_session));
            cfg.store
                .set_disk_bytes(scaled(cfg.store.disk_bytes()).max(25 * max_session));
        }
    }
    run_trace(cfg, paper_trace(scale, 1.0))
}

/// Renders the Figure 24 table.
pub fn run(scale: Scale) -> String {
    let paper = [
        ("LLaMA-13B", 0.0, 0.034, 0.86),
        ("LLaMA-65B", 0.0, 0.017, 0.71),
        ("LLaMA-70B", 0.0, 0.077, 0.89),
        ("Falcon-40B", 0.0, 0.191, 0.90),
    ];
    let mut t = Table::new(
        "Figure 24: caching storage mediums",
        &["model", "medium", "hit rate", "paper hit", "GPU busy h"],
    );
    for (m, (_, p_hbm_dram, p_full)) in models::evaluation_models()
        .into_iter()
        .zip(paper.iter().map(|&(_, a, b, c)| (a, b, c)))
    {
        for medium in [
            MediumConfig::HbmOnly,
            MediumConfig::HbmDram,
            MediumConfig::DramDisk,
        ] {
            let r = run_cell(m.clone(), medium, scale);
            let paper_hit = match medium {
                MediumConfig::HbmOnly => "~0%".to_string(),
                MediumConfig::HbmDram => pct(p_hbm_dram),
                MediumConfig::DramDisk => pct(p_full),
            };
            t.row(&[
                m.name.to_string(),
                medium.label().into(),
                pct(r.hit_rate()),
                paper_hit,
                format!("{:.2}", r.busy_hours()),
            ]);
        }
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            sessions: 100,
            warmup_turns: 100,
        }
    }

    /// Hit rate ordering: HBM-only < HBM+DRAM < DRAM+SSD, with HBM-only
    /// near zero (the paper's headline for this figure).
    #[test]
    fn medium_hierarchy_ordering() {
        let m = ModelSpec::llama1_65b();
        let hbm = run_cell(m.clone(), MediumConfig::HbmOnly, tiny());
        let hbm_dram = run_cell(m.clone(), MediumConfig::HbmDram, tiny());
        let full = run_cell(m, MediumConfig::DramDisk, tiny());
        assert!(hbm.hit_rate() < 0.3, "HBM-only hit {}", hbm.hit_rate());
        assert!(hbm_dram.hit_rate() >= hbm.hit_rate());
        assert!(full.hit_rate() > hbm_dram.hit_rate());
        assert!(full.hit_rate() > 0.7, "full hit {}", full.hit_rate());
    }
}
