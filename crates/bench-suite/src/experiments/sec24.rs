//! §2.4's motivation arithmetic: the four numbers the paper's design
//! hangs on, regenerated from the cost model.
//!
//! - Prefilling 2K tokens of LLaMA-65B on 4×A100 takes ~360 ms.
//! - That prefill produces ~5 GB of KV (2.5 MB/token) → ~13.9 GB/s.
//! - Loading those 5 GB over 26 GB/s PCIe takes ~192 ms.
//! - The 190 GB of free HBM beside the weights fills in ~14 s.

use metrics::table::Table;
use models::{ClusterSpec, CostModel, ModelSpec};

/// Renders the §2.4 anchor table.
pub fn run() -> String {
    let m = ModelSpec::llama1_65b();
    let c = ClusterSpec::paper_testbed();
    let cm = CostModel::default();
    let prefill_ms = cm.prefill_time(&m, &c, 2048, 0).as_millis_f64();
    let kv_gb = m.kv_bytes(2048) as f64 / 1e9;
    let gen_rate = cm.kv_gen_rate(&m, &c, 2048) / 1e9;
    let load_ms = cm.pcie_time(&c, m.kv_bytes(2048)).as_millis_f64();
    // Free HBM after the fp16 weights.
    let free_hbm = c.total_hbm_bytes() as f64 - m.weight_bytes() as f64;
    let fill_secs = free_hbm / (gen_rate * 1e9);
    let mut t = Table::new(
        "Section 2.4: motivation anchors (LLaMA-65B, 4xA100)",
        &["quantity", "measured", "paper"],
    );
    t.row(&[
        "prefill 2K tokens".into(),
        format!("{prefill_ms:.0} ms"),
        "~360 ms".into(),
    ]);
    t.row(&[
        "KV produced".into(),
        format!("{kv_gb:.1} GB"),
        "~5 GB".into(),
    ]);
    t.row(&[
        "KV generation rate".into(),
        format!("{gen_rate:.1} GB/s"),
        "~13.9 GB/s".into(),
    ]);
    t.row(&[
        "PCIe load of that KV".into(),
        format!("{load_ms:.0} ms"),
        "~192 ms".into(),
    ]);
    t.row(&[
        "free HBM fills in".into(),
        format!("{fill_secs:.0} s"),
        "~14 s".into(),
    ]);
    t.render()
}

#[cfg(test)]
mod tests {
    /// Every §2.4 anchor lands within 15% of the paper's number.
    #[test]
    fn anchors_within_tolerance() {
        let s = super::run();
        // The rendered numbers are checked numerically in the models
        // crate; here we pin the table shape.
        assert!(s.contains("prefill 2K tokens"));
        assert!(s.contains("free HBM fills in"));
        // And the headline 14s arithmetic directly:
        use models::{ClusterSpec, CostModel, ModelSpec};
        let m = ModelSpec::llama1_65b();
        let c = ClusterSpec::paper_testbed();
        let cm = CostModel::default();
        let gen = cm.kv_gen_rate(&m, &c, 2048);
        let free = c.total_hbm_bytes() as f64 - m.weight_bytes() as f64;
        let fill = free / gen;
        assert!((11.0..17.0).contains(&fill), "fill time {fill}");
    }
}
