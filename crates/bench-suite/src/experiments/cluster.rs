//! Cluster scaling: N instances sharing one AttentionStore.
//!
//! Not a paper figure — the paper evaluates one serving instance — but
//! the natural extension its §3.3 windows invite: the prefetch/eviction
//! look-ahead operates over the *merged* queue of every instance, so one
//! store can feed a whole cluster. This experiment sweeps the instance
//! count under both routing policies and reports aggregate throughput
//! next to per-instance hit rates, surfacing the affinity-vs-balance
//! tradeoff: session-affinity routing keeps a session's KV traffic on
//! one instance's links, least-loaded routing spreads load but makes a
//! session's staged KV chase it across instances.

use engine::{run_cluster, ClusterConfig, ClusterReport, Mode, RouterKind};
use metrics::table::{pct, Table};
use models::ModelSpec;

use crate::{paper_trace, scaled_config, Scale};

/// The sweep results: one cluster run per (router, instance count).
pub struct ClusterResults {
    /// `(router, n_instances, report)` per run.
    pub rows: Vec<(RouterKind, usize, ClusterReport)>,
}

/// Runs the sweep: every router × every instance count, same workload
/// and same scale-proportional store capacity.
pub fn compute(scale: Scale, instance_counts: &[usize]) -> ClusterResults {
    let model = ModelSpec::llama2_13b();
    let mut rows = Vec::new();
    for router in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
        for &n in instance_counts {
            let cfg = scaled_config(Mode::CachedAttention, model.clone(), scale);
            let trace = paper_trace(scale, 1.0);
            let report = run_cluster(ClusterConfig::new(cfg, n, router), trace);
            rows.push((router, n, report));
        }
    }
    ClusterResults { rows }
}

/// Renders the sweep as a comparison table.
pub fn render(r: &ClusterResults) -> String {
    let mut t = Table::new(
        "Cluster scaling: N instances, one shared AttentionStore",
        &[
            "router",
            "N",
            "makespan s",
            "turns/s",
            "hit rate",
            "per-instance hit rates",
            "per-instance turns",
        ],
    );
    for (router, n, rep) in &r.rows {
        let hit_rates: Vec<String> = rep.instances.iter().map(|i| pct(i.hit_rate())).collect();
        let turns: Vec<String> = rep
            .instances
            .iter()
            .map(|i| i.turns_done.to_string())
            .collect();
        t.row(&[
            router.label().to_string(),
            n.to_string(),
            format!("{:.1}", rep.aggregate.makespan_secs),
            format!("{:.2}", rep.throughput()),
            pct(rep.aggregate.hit_rate()),
            hit_rates.join(" "),
            turns.join(" "),
        ]);
    }
    t.render()
}

/// Runs the sweep at `scale` and renders the table.
pub fn run(scale: Scale, instance_counts: &[usize]) -> String {
    render(&compute(scale, instance_counts))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small sweep completes every session on every shape, the
    /// per-instance turn counts add up to the cluster total, and adding
    /// an instance never slows the workload down.
    #[test]
    fn cluster_sweep_shapes_hold_at_small_scale() {
        let scale = Scale {
            sessions: 60,
            warmup_turns: 0,
        };
        let r = compute(scale, &[1, 2]);
        assert_eq!(r.rows.len(), 4);
        for (router, n, rep) in &r.rows {
            assert_eq!(
                rep.aggregate.sessions_done.get(),
                60,
                "{} n={n}: sessions lost",
                router.label()
            );
            assert_eq!(rep.instances.len(), *n);
            let turns: u64 = rep.instances.iter().map(|i| i.turns_done).sum();
            assert_eq!(
                turns,
                rep.aggregate.turns_measured.get(),
                "{} n={n}: per-instance turns disagree with the aggregate",
                router.label()
            );
        }
        for router in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
            let of = |n: usize| {
                &r.rows
                    .iter()
                    .find(|(rt, rn, _)| *rt == router && *rn == n)
                    .expect("row exists")
                    .2
            };
            assert!(
                of(2).aggregate.makespan_secs <= of(1).aggregate.makespan_secs,
                "{}: two instances slower than one",
                router.label()
            );
        }
        let table = render(&r);
        assert!(table.contains("affinity"));
        assert!(table.contains("least-loaded"));
    }
}
