//! Extension experiment: Sarathi-style chunked prefill (the paper's
//! reference \[1\]).
//!
//! §4.2 observes that under continuous batching "each newly arrived job
//! must complete prefilling before it can join other decoding jobs",
//! stretching decode time — and credits CachedAttention's shorter
//! prefills with relieving it. Chunked prefill attacks the same problem
//! from the scheduling side: long prefills run in slices with a decode
//! iteration piggybacked between slices. This ablation measures both
//! levers on the recomputation baseline and on CachedAttention.

use engine::{run_trace, EngineConfig, Mode, RunReport};
use metrics::table::{secs, Table};
use models::ModelSpec;

use crate::{paper_trace, Scale};

/// Runs one (mode, chunk) cell on LLaMA-70B (long prefills).
pub fn run_cell(mode: Mode, chunk: Option<u64>, scale: Scale) -> RunReport {
    let mut cfg =
        EngineConfig::paper(mode, ModelSpec::llama2_70b()).with_warmup(scale.warmup_turns);
    cfg.chunked_prefill_tokens = chunk;
    run_trace(cfg, paper_trace(scale, 1.0))
}

/// Renders the chunked-prefill ablation.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Extension: chunked prefill vs KV reuse (LLaMA-70B)",
        &[
            "mode",
            "chunk",
            "TTFT",
            "decode p95 (s)",
            "decode mean (s)",
            "GPU busy h",
        ],
    );
    for mode in [Mode::Recompute, Mode::CachedAttention] {
        for chunk in [None, Some(512u64), Some(128)] {
            let mut r = run_cell(mode, chunk, scale);
            let p95 = r.decode_latency.percentile(95.0).unwrap_or(0.0);
            t.row(&[
                mode.label().into(),
                chunk.map_or("-".into(), |c| c.to_string()),
                secs(r.ttft_mean()),
                format!("{p95:.2}"),
                format!("{:.2}", r.decode_latency.mean()),
                format!("{:.2}", r.busy_hours()),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "shape: chunking relieves decode blocking for RE's long prefills at a\n\
         small TTFT cost; CachedAttention's prefills are already short, so it\n\
         gains little — reuse subsumes most of the scheduling benefit.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RE benefits more from chunking than CA does: CA's prefills are
    /// already short.
    #[test]
    fn chunking_helps_re_more_than_ca() {
        let tiny = Scale {
            sessions: 150,
            warmup_turns: 150,
        };
        let mut re_mono = run_cell(Mode::Recompute, None, tiny);
        let mut re_chunk = run_cell(Mode::Recompute, Some(128), tiny);
        let re_gain = re_mono.decode_latency.percentile(95.0).unwrap()
            - re_chunk.decode_latency.percentile(95.0).unwrap();
        let mut ca_mono = run_cell(Mode::CachedAttention, None, tiny);
        let mut ca_chunk = run_cell(Mode::CachedAttention, Some(128), tiny);
        let ca_gain = ca_mono.decode_latency.percentile(95.0).unwrap()
            - ca_chunk.decode_latency.percentile(95.0).unwrap();
        assert!(re_gain >= -0.01, "chunking should not hurt RE: {re_gain}");
        assert!(
            re_gain >= ca_gain - 0.01,
            "RE gain {re_gain} should be at least CA gain {ca_gain}"
        );
    }
}
