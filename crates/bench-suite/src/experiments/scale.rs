//! The million-event throughput gate behind `exp_scale`.
//!
//! Every other experiment measures what the simulator *says* (virtual
//! latencies, hit rates); this one measures the simulator *itself*: how
//! many discrete events per host second it sustains on a large
//! multi-instance run, how much wall-clock and resident memory the run
//! costs, and where the host time goes (the per-scope self-profile from
//! `sim::profiler`).
//!
//! Two clocks, two regression disciplines:
//!
//! - **Virtual fields** (`turns`, `events`, `makespan_secs`, `hit_rate`)
//!   are bit-deterministic — the compare step requires them to match the
//!   baseline exactly (floats within epsilon). Any drift means serving
//!   behavior changed, not the machine.
//! - **Host fields** (`events_per_sec`, `wall_secs`, `peak_rss_bytes`)
//!   depend on the hardware running the gate, so they get a wide
//!   tolerance band ([`DEFAULT_HOST_TOLERANCE`], ±50%) that catches
//!   order-of-magnitude collapses (an accidental O(n²) in a hot path)
//!   without flaking on machine-to-machine noise.
//!
//! `ci.sh` runs the [`ScaleOpts::bench`] scenario and diffs it against
//! the checked-in `BENCH_scale.json`; regenerate with
//! `REGEN_BENCH=1 ./ci.sh` after intentional changes.

use engine::{run_cluster, ClusterConfig, ClusterReport, EngineConfig, Mode, RouterKind};
use models::ModelSpec;
use serde::{Serialize, Value};
use sim::{profiler, ProfilerConfig, SelfProfile};
use workload::{Diurnal, Generator, ShareGptProfile, Trace};

use crate::DEFAULT_SEED;

/// Version of the `BENCH_scale.json` layout. Bump when fields are
/// added, removed or renamed; the compare step refuses cross-schema
/// diffs.
pub const SCALE_SCHEMA: u64 = 1;

/// Tolerance band for host-clock fields (events/sec, wall seconds,
/// peak RSS). Host time is machine-dependent, so the band is wide: it
/// exists to catch algorithmic collapses, not 10% noise.
pub const DEFAULT_HOST_TOLERANCE: f64 = 0.5;

/// Absolute slack for the virtual-float comparisons: the simulator is
/// deterministic, so these only move on real behavior change.
const EPSILON: f64 = 1e-6;

/// Configuration of one scale run.
#[derive(Debug, Clone)]
pub struct ScaleOpts {
    /// Number of conversation sessions in the trace.
    pub sessions: usize,
    /// Serving instances in the cluster.
    pub instances: usize,
    /// Mean session arrival rate (sessions/sec of virtual time).
    pub arrival_rate: f64,
    /// Diurnal modulation of the arrival rate (`None` = flat Poisson).
    pub diurnal: Option<Diurnal>,
    /// Heartbeat period for the stderr progress line (`None` = quiet).
    pub heartbeat_secs: Option<f64>,
}

impl ScaleOpts {
    /// The acceptance-scale run: 100K sessions (~575K turns, ~14M
    /// events) across 8 instances under a diurnal arrival wave that
    /// peaks right at fleet capacity — ~18 virtual hours, minutes of
    /// wall clock.
    pub fn full() -> Self {
        ScaleOpts {
            sessions: 100_000,
            instances: 8,
            arrival_rate: 1.5,
            diurnal: Some(Diurnal::default()),
            heartbeat_secs: Some(10.0),
        }
    }

    /// The CI gate scenario: large enough that per-event overheads
    /// dominate fixed costs (~300K events), small enough to run in a
    /// couple of seconds. This is the config `BENCH_scale.json` pins.
    pub fn bench() -> Self {
        ScaleOpts {
            sessions: 2_000,
            instances: 4,
            arrival_rate: 1.0,
            diurnal: Some(Diurnal::default()),
            heartbeat_secs: None,
        }
    }
}

/// KV of a finished conversation idles in the store this long (virtual
/// seconds) before the TTL sweep drops it.
///
/// The TTL is what makes a 100K-session run tractable *and* realistic:
/// without it every session ever saved stays resident forever, the
/// entry map grows with the total session count, and every
/// eviction-candidate scan (`store.reserve`, `store.prefetch` in the
/// self-profile) degrades linearly — the whole run goes quadratic. A
/// production store expires idle conversations; with a TTL the live
/// set is bounded by `arrival_rate x ttl` regardless of how many total
/// sessions flow through.
pub const SCALE_TTL_SECS: f64 = 3_600.0;

/// Sessions whose KV is concurrently resident at the diurnal peak:
/// arrivals during one TTL window, capped by the trace itself.
pub fn working_set_sessions(opts: &ScaleOpts) -> f64 {
    let peak_factor = opts.diurnal.as_ref().map_or(1.0, |d| 1.0 + d.amplitude);
    (opts.arrival_rate * peak_factor * SCALE_TTL_SECS).min(opts.sessions as f64)
}

/// The cluster configuration for a scale run: the paper's engine with
/// an idle-session TTL and storage provisioned for the *working set*,
/// not the total session count.
///
/// Unlike [`crate::scaled_config`] — which shrinks the store for small
/// runs to preserve the paper's eviction pressure — the scale gate
/// provisions for the TTL-bounded peak working set
/// ([`working_set_sessions`]) and grows DRAM/disk proportionally when
/// that exceeds the paper's 9K-session baseline. Total sessions don't
/// matter: a fleet serving a million conversations a day still only
/// holds a few hours' worth of KV at once.
pub fn scale_config(opts: &ScaleOpts) -> ClusterConfig {
    let f = (working_set_sessions(opts) / 9_000.0).max(1.0);
    let mut engine = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    engine.store.ttl = Some(sim::Dur::from_secs_f64(SCALE_TTL_SECS));
    engine
        .store
        .set_dram_bytes((engine.store.dram_bytes() as f64 * f) as u64);
    engine
        .store
        .set_disk_bytes((engine.store.disk_bytes() as f64 * f) as u64);
    engine.cluster.tiers[0].capacity = engine.store.dram_bytes();
    engine.cluster.tiers[1].capacity = engine.store.disk_bytes();
    ClusterConfig::new(engine, opts.instances, RouterKind::SessionAffinity)
}

/// Builds the scale trace: the ShareGPT profile under `arrival_rate`,
/// optionally diurnally modulated, at the canonical seed.
pub fn scale_trace(opts: &ScaleOpts) -> Trace {
    let mut profile = ShareGptProfile::default().with_arrival_rate(opts.arrival_rate);
    if let Some(d) = &opts.diurnal {
        profile = profile.with_diurnal(d.clone());
    }
    Generator::new(profile, DEFAULT_SEED).trace(opts.sessions)
}

/// A completed scale run: the cluster report plus the host-time
/// self-profile collected around it.
#[derive(Debug)]
pub struct ScaleRun {
    /// The virtual-time serving report.
    pub report: ClusterReport,
    /// The host-time self-profile (wall clock, events/sec, RSS, scopes).
    pub profile: SelfProfile,
    /// Total turns in the driving trace.
    pub trace_turns: u64,
}

/// Runs the scale scenario with the self-profiler enabled.
///
/// No telemetry observer is attached: at hundreds of thousands of
/// sessions the verbatim trace would dominate memory, and the gate
/// measures the simulator core, not the exporter.
pub fn run_scale(opts: &ScaleOpts) -> ScaleRun {
    let trace = scale_trace(opts);
    let trace_turns = trace.total_turns() as u64;
    profiler::begin(ProfilerConfig {
        heartbeat_secs: opts.heartbeat_secs,
    });
    let report = run_cluster(scale_config(opts), trace);
    let profile = profiler::finish();
    ScaleRun {
        report,
        profile,
        trace_turns,
    }
}

/// The serialized fingerprint `BENCH_scale.json` pins.
#[derive(Debug, Clone, Serialize)]
pub struct ScaleBench {
    /// Layout version ([`SCALE_SCHEMA`]).
    pub schema: u64,
    /// Sessions in the driving trace — exact match required.
    pub sessions: u64,
    /// Serving instances — exact match required.
    pub instances: u64,
    /// Total turns in the trace — exact match required.
    pub turns: u64,
    /// Discrete events dispatched — exact match required (the event
    /// count is a complete fingerprint of the simulation's control
    /// flow).
    pub events: u64,
    /// Virtual makespan, seconds — deterministic, epsilon-exact.
    pub makespan_secs: f64,
    /// Store hit rate — deterministic, epsilon-exact.
    pub hit_rate: f64,
    /// Host wall-clock of the run, seconds — banded (lower is better).
    pub wall_secs: f64,
    /// Events dispatched per host second — banded (higher is better).
    pub events_per_sec: f64,
    /// Peak resident set size, bytes (`null` off Linux) — banded
    /// (lower is better).
    pub peak_rss_bytes: Option<u64>,
    /// The per-scope host-time breakdown, for humans reading the JSON;
    /// the compare step ignores it (scope timings are even noisier
    /// than the totals).
    pub self_profile: SelfProfile,
}

/// Folds a completed run into the benchmark fingerprint.
pub fn to_bench(opts: &ScaleOpts, run: &ScaleRun) -> ScaleBench {
    ScaleBench {
        schema: SCALE_SCHEMA,
        sessions: opts.sessions as u64,
        instances: opts.instances as u64,
        turns: run.trace_turns,
        events: run.profile.events,
        makespan_secs: run.report.aggregate.makespan_secs,
        hit_rate: run.report.aggregate.hit_rate(),
        wall_secs: run.profile.wall_secs,
        events_per_sec: run.profile.events_per_sec,
        peak_rss_bytes: run.profile.peak_rss_bytes,
        self_profile: run.profile.clone(),
    }
}

/// Renders the human-readable summary `exp_scale` prints.
pub fn render(bench: &ScaleBench) -> String {
    let mut out = String::new();
    out.push_str("scale run (host-time throughput gate)\n");
    out.push_str(&format!(
        "  sessions {}  instances {}  turns {}\n",
        bench.sessions, bench.instances, bench.turns
    ));
    out.push_str(&format!(
        "  virtual: makespan {:.1}s  hit_rate {:.3}\n",
        bench.makespan_secs, bench.hit_rate
    ));
    let rss = match bench.peak_rss_bytes {
        Some(b) => format!("{:.1} MiB", b as f64 / (1024.0 * 1024.0)),
        None => "n/a".to_string(),
    };
    out.push_str(&format!(
        "  host:    {} events in {:.2}s wall = {:.0} events/sec, peak RSS {}\n",
        bench.events, bench.wall_secs, bench.events_per_sec, rss
    ));
    out.push('\n');
    out.push_str(&bench.self_profile.render_table());
    out
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    }
}

/// Reads an optional numeric field, distinguishing an explicit `null`
/// (absent measurement, e.g. RSS off Linux) from a malformed profile.
fn opt_num(bench: &Value, field: &str) -> Result<Option<f64>, String> {
    match bench.get(field) {
        None => Err(format!("field `{field}` missing")),
        Some(Value::Null) => Ok(None),
        Some(v) => num(v)
            .map(Some)
            .ok_or_else(|| format!("field `{field}` non-numeric")),
    }
}

fn req_num(bench: &Value, field: &str) -> Result<f64, String> {
    opt_num(bench, field)?.ok_or_else(|| format!("field `{field}` null"))
}

/// Diffs `current` against `baseline` (both serialized [`ScaleBench`]
/// values); returns every failure found — empty means the gate passes.
///
/// Virtual fields must match exactly (integers) or within epsilon
/// (floats): the simulator is deterministic, so any drift is a real
/// behavior change — regenerate with `REGEN_BENCH=1 ./ci.sh` if
/// intended. Host fields are banded by `tolerance`: `events_per_sec`
/// fails when it *drops* below the band, `wall_secs` and
/// `peak_rss_bytes` when they *grow* above it.
pub fn compare_scale(baseline: &Value, current: &Value, tolerance: f64) -> Vec<String> {
    let mut fails = Vec::new();
    let base_schema = baseline.get("schema").and_then(num);
    let cur_schema = current.get("schema").and_then(num);
    if base_schema != cur_schema || base_schema != Some(SCALE_SCHEMA as f64) {
        fails.push(format!(
            "scale schema mismatch: baseline {:?} vs current {:?} (expected {SCALE_SCHEMA}); \
             regenerate with REGEN_BENCH=1 ./ci.sh",
            base_schema, cur_schema
        ));
        return fails;
    }

    // Deterministic virtual-time fields: exact.
    for field in ["sessions", "instances", "turns", "events"] {
        match (req_num(baseline, field), req_num(current, field)) {
            (Ok(b), Ok(c)) => {
                if b != c {
                    fails.push(format!(
                        "{field} changed {b} -> {c} (deterministic; must match exactly — \
                         regenerate with REGEN_BENCH=1 ./ci.sh if intended)"
                    ));
                }
            }
            (Err(e), _) | (_, Err(e)) => fails.push(e),
        }
    }
    for field in ["makespan_secs", "hit_rate"] {
        match (req_num(baseline, field), req_num(current, field)) {
            (Ok(b), Ok(c)) => {
                if (b - c).abs() > EPSILON {
                    fails.push(format!(
                        "{field} changed {b:.6} -> {c:.6} (deterministic; must match within \
                         epsilon — regenerate with REGEN_BENCH=1 ./ci.sh if intended)"
                    ));
                }
            }
            (Err(e), _) | (_, Err(e)) => fails.push(e),
        }
    }

    // Host-clock fields: banded.
    match (
        req_num(baseline, "events_per_sec"),
        req_num(current, "events_per_sec"),
    ) {
        (Ok(b), Ok(c)) => {
            if c < b * (1.0 - tolerance) - EPSILON {
                fails.push(format!(
                    "events_per_sec regressed {b:.0} -> {c:.0} (-{:.1}% > {:.1}% band)",
                    (b - c) / b.max(EPSILON) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => fails.push(e),
    }
    match (
        req_num(baseline, "wall_secs"),
        req_num(current, "wall_secs"),
    ) {
        (Ok(b), Ok(c)) => {
            if c > b * (1.0 + tolerance) + EPSILON {
                fails.push(format!(
                    "wall_secs regressed {b:.2} -> {c:.2} (+{:.1}% > {:.1}% band)",
                    (c - b) / b.max(EPSILON) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        (Err(e), _) | (_, Err(e)) => fails.push(e),
    }
    match (
        opt_num(baseline, "peak_rss_bytes"),
        opt_num(current, "peak_rss_bytes"),
    ) {
        // RSS unavailable on both sides (non-Linux): simply absent.
        (Ok(None), Ok(None)) => {}
        (Ok(Some(b)), Ok(Some(c))) => {
            if c > b * (1.0 + tolerance) + EPSILON {
                fails.push(format!(
                    "peak_rss_bytes regressed {b:.0} -> {c:.0} (+{:.1}% > {:.1}% band)",
                    (c - b) / b.max(EPSILON) * 100.0,
                    tolerance * 100.0
                ));
            }
        }
        (Ok(b), Ok(c)) => fails.push(format!(
            "peak_rss_bytes presence changed {b:?} -> {c:?} (null means unmeasurable; \
             regenerate with REGEN_BENCH=1 ./ci.sh if the platform changed)"
        )),
        (Err(e), _) | (_, Err(e)) => fails.push(e),
    }
    fails
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The profiler's enable flag is process-global; every test that
    /// runs a profiled simulation must hold this.
    static PROFILER_LOCK: Mutex<()> = Mutex::new(());

    fn tiny() -> ScaleOpts {
        ScaleOpts {
            sessions: 120,
            instances: 2,
            arrival_rate: 2.0,
            diurnal: Some(Diurnal::default()),
            heartbeat_secs: None,
        }
    }

    #[test]
    fn scale_run_is_virtually_deterministic() {
        let _guard = PROFILER_LOCK.lock().unwrap();
        let opts = tiny();
        let a = to_bench(&opts, &run_scale(&opts));
        let b = to_bench(&opts, &run_scale(&opts));
        assert_eq!(a.turns, b.turns);
        assert_eq!(a.events, b.events);
        assert_eq!(a.makespan_secs, b.makespan_secs);
        assert_eq!(a.hit_rate, b.hit_rate);
        assert!(a.events > 0);
        assert!(a.events_per_sec > 0.0);
        assert!(!a.self_profile.scopes.is_empty(), "hot paths were scoped");
    }

    #[test]
    fn two_runs_of_the_same_bench_pass_the_gate() {
        let _guard = PROFILER_LOCK.lock().unwrap();
        let opts = tiny();
        let a = to_bench(&opts, &run_scale(&opts)).to_value();
        let b = to_bench(&opts, &run_scale(&opts)).to_value();
        let fails = compare_scale(&a, &b, DEFAULT_HOST_TOLERANCE);
        assert!(fails.is_empty(), "{fails:?}");
    }

    fn sample() -> Value {
        ScaleBench {
            schema: SCALE_SCHEMA,
            sessions: 4_000,
            instances: 4,
            turns: 23_000,
            events: 1_000_000,
            makespan_secs: 1_500.0,
            hit_rate: 0.9,
            wall_secs: 4.0,
            events_per_sec: 250_000.0,
            peak_rss_bytes: Some(500_000_000),
            self_profile: SelfProfile {
                wall_secs: 4.0,
                events: 1_000_000,
                events_per_sec: 250_000.0,
                peak_rss_bytes: Some(500_000_000),
                alloc_count: None,
                alloc_bytes: None,
                scopes: Vec::new(),
            },
        }
        .to_value()
    }

    fn set(bench: &mut Value, field: &str, to: Value) {
        let Value::Object(pairs) = bench else {
            panic!("bench must be an object")
        };
        for (k, v) in pairs.iter_mut() {
            if k == field {
                *v = to.clone();
            }
        }
    }

    #[test]
    fn identical_benches_pass() {
        assert!(compare_scale(&sample(), &sample(), DEFAULT_HOST_TOLERANCE).is_empty());
    }

    #[test]
    fn event_count_drift_fails_exactly() {
        let mut cur = sample();
        set(&mut cur, "events", Value::U64(1_000_001));
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("events changed"));
    }

    #[test]
    fn makespan_drift_fails_but_epsilon_noise_passes() {
        let mut cur = sample();
        set(&mut cur, "makespan_secs", Value::F64(1_500.0 + 5e-7));
        assert!(compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE).is_empty());
        set(&mut cur, "makespan_secs", Value::F64(1_501.0));
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("makespan_secs"));
    }

    #[test]
    fn throughput_collapse_fails_but_noise_passes() {
        let mut cur = sample();
        // -30% is inside the ±50% host band.
        set(&mut cur, "events_per_sec", Value::F64(175_000.0));
        assert!(compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE).is_empty());
        // -60% is a collapse.
        set(&mut cur, "events_per_sec", Value::F64(100_000.0));
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("events_per_sec regressed"));
        // Faster is never a failure.
        set(&mut cur, "events_per_sec", Value::F64(900_000.0));
        assert!(compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE).is_empty());
    }

    #[test]
    fn rss_growth_and_presence_flips_fail() {
        let mut cur = sample();
        set(&mut cur, "peak_rss_bytes", Value::U64(800_000_000)); // +60%
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("peak_rss_bytes regressed"));

        set(&mut cur, "peak_rss_bytes", Value::Null);
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1, "{fails:?}");
        assert!(fails[0].contains("presence changed"));

        // Null in both = absent, fine.
        let mut base = sample();
        set(&mut base, "peak_rss_bytes", Value::Null);
        assert!(compare_scale(&base, &cur, DEFAULT_HOST_TOLERANCE).is_empty());
    }

    #[test]
    fn schema_mismatch_fails_with_regen_hint() {
        let mut cur = sample();
        set(&mut cur, "schema", Value::U64(99));
        let fails = compare_scale(&sample(), &cur, DEFAULT_HOST_TOLERANCE);
        assert_eq!(fails.len(), 1);
        assert!(fails[0].contains("REGEN_BENCH=1"));
    }

    #[test]
    fn store_is_provisioned_for_the_working_set_not_total_sessions() {
        let paper_dram = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b())
            .store
            .dram_bytes();
        let small = scale_config(&tiny());
        assert_eq!(
            small.engine.store.dram_bytes(),
            paper_dram,
            "a working set below the paper scale keeps the paper store"
        );
        assert!(small.engine.store.ttl.is_some(), "scale runs always expire");

        // 100x the sessions at the same arrival rate: the TTL bounds the
        // resident set, so the store must NOT grow 100x with it.
        let many = scale_config(&ScaleOpts {
            sessions: 12_000,
            ..tiny()
        });
        let f = many.engine.store.dram_bytes() as f64 / paper_dram as f64;
        assert!(
            f < 2.0,
            "store grew {f:.1}x for 100x sessions; provisioning must track the TTL working set"
        );

        // A 10x arrival rate widens the working set and the store with it.
        let hot = scale_config(&ScaleOpts {
            sessions: 1_000_000,
            arrival_rate: 20.0,
            ..tiny()
        });
        assert!(hot.engine.store.dram_bytes() > many.engine.store.dram_bytes());
        assert_eq!(
            hot.engine.cluster.tiers[0].capacity,
            hot.engine.store.dram_bytes()
        );
    }
}
