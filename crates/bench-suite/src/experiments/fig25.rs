//! Figure 25: impact of session arrival rates (§4.3.8).
//!
//! Paper (LLaMA-13B, 128G/10T): as λ grows 0.5→2.0/s the hit rate slips
//! 82%→77%, TTFT rises 0.122s→0.154s, prefill throughput falls
//! 858K→681K tokens/s and GPU time grows 6.25h→7.01h — i.e. graceful
//! degradation.

use engine::{run_trace, Mode, RunReport};
use metrics::table::{pct, secs, Table};
use models::ModelSpec;

use crate::{paper_trace, Scale};

/// Runs one arrival-rate cell (scale-proportional storage).
pub fn run_cell(rate: f64, scale: Scale) -> RunReport {
    let trace = paper_trace(scale, rate);
    run_trace(
        crate::scaled_config(Mode::CachedAttention, ModelSpec::llama2_13b(), scale),
        trace,
    )
}

/// Renders the Figure 25 table.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Figure 25: session arrival rates (LLaMA-13B, CA)",
        &["rate/s", "hit rate", "TTFT", "prefill tok/s", "GPU busy h"],
    );
    for rate in [0.5, 1.0, 1.5, 2.0] {
        let r = run_cell(rate, scale);
        t.row(&[
            format!("{rate:.1}"),
            pct(r.hit_rate()),
            secs(r.ttft_mean()),
            format!("{:.0}", r.prefill_throughput()),
            format!("{:.2}", r.busy_hours()),
        ]);
    }
    let mut out = t.render();
    out.push_str(
        "paper shape: higher arrival rates mean more distinct sessions per unit\n\
         time, so the same store covers less and the hit rate slips slightly,\n\
         dragging TTFT/throughput with it — but degradation is graceful.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Higher arrival rates never improve the hit rate, and the system
    /// keeps hitting well even at 2/s (graceful degradation).
    #[test]
    fn degradation_is_graceful() {
        let tiny = Scale {
            sessions: 150,
            warmup_turns: 150,
        };
        let slow = run_cell(0.5, tiny);
        let fast = run_cell(2.0, tiny);
        assert!(fast.hit_rate() <= slow.hit_rate() + 0.05);
        assert!(fast.hit_rate() > 0.5, "fast hit {}", fast.hit_rate());
    }
}
