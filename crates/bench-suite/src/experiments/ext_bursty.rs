//! Extension experiment: bursty arrivals.
//!
//! The paper's workload draws session arrivals from a homogeneous Poisson
//! process (§4.1); production traffic is burstier. This ablation replays
//! the same sessions under a two-phase Markov-modulated Poisson process
//! with the same long-run rate and checks that CachedAttention's benefit
//! is robust: the scheduler-aware prefetcher works from the queue, so
//! bursts deepen the queue but do not break KV placement.

use engine::{run_trace, Mode, RunReport};
use metrics::table::{pct, secs, Table};
use models::ModelSpec;
use workload::{Burstiness, Generator, ShareGptProfile};

use crate::{scaled_config, Scale, DEFAULT_SEED};

/// Runs one (mode, bursty?) cell on LLaMA-13B.
pub fn run_cell(mode: Mode, bursty: bool, scale: Scale) -> RunReport {
    let mut profile = ShareGptProfile::default();
    if bursty {
        profile = profile.with_burstiness(Burstiness::default());
    }
    let trace = Generator::new(profile, DEFAULT_SEED).trace(scale.sessions);
    run_trace(scaled_config(mode, ModelSpec::llama2_13b(), scale), trace)
}

/// Renders the burstiness ablation.
pub fn run(scale: Scale) -> String {
    let mut t = Table::new(
        "Extension: bursty (MMPP) arrivals (LLaMA-13B)",
        &[
            "mode",
            "arrivals",
            "hit rate",
            "TTFT",
            "queue wait",
            "GPU busy h",
        ],
    );
    for mode in [Mode::CachedAttention, Mode::Recompute] {
        for bursty in [false, true] {
            let r = run_cell(mode, bursty, scale);
            t.row(&[
                mode.label().into(),
                if bursty { "bursty" } else { "smooth" }.into(),
                pct(r.hit_rate()),
                secs(r.ttft_mean()),
                secs(r.queue_wait.mean()),
                format!("{:.2}", r.busy_hours()),
            ]);
        }
    }
    let mut out = t.render();
    out.push_str(
        "shape: bursts deepen queue waits for both modes, but CachedAttention's\n\
         hit rate and TTFT stay put — placement is queue-driven, not clock-driven.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// CA's hit rate survives bursty arrivals.
    #[test]
    fn ca_hit_rate_robust_to_bursts() {
        let tiny = Scale {
            sessions: 250,
            warmup_turns: 250,
        };
        let smooth = run_cell(Mode::CachedAttention, false, tiny);
        let bursty = run_cell(Mode::CachedAttention, true, tiny);
        assert!(
            bursty.hit_rate() > smooth.hit_rate() - 0.12,
            "bursty {} vs smooth {}",
            bursty.hit_rate(),
            smooth.hit_rate()
        );
        // Still beats RE under bursts.
        let re = run_cell(Mode::Recompute, true, tiny);
        assert!(bursty.ttft_mean() < re.ttft_mean());
    }
}
