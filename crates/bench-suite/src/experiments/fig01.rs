//! Figure 1b: prefill latency grows with prompt length while decode
//! latency per iteration stays flat.
//!
//! Setting: LLaMA-70B, batch 8, 4×A100, the theoretical cost calibration
//! (`CostModel::default`, anchored to §2.4's 360 ms figure).

use metrics::table::Table;
use models::{ClusterSpec, CostModel, ModelSpec};

/// Renders the Figure 1b series.
pub fn run() -> String {
    let m = ModelSpec::llama2_70b();
    let c = ClusterSpec::paper_testbed();
    let cm = CostModel::default();
    let batch = 8u64;
    let mut t = Table::new(
        "Figure 1b: prefilling vs decoding latency (LLaMA-70B, batch 8, 4xA100)",
        &["prompt tokens", "prefill (ms)", "decode iter (ms)"],
    );
    for tokens in [128u64, 256, 512, 1024, 2048, 4096] {
        // The batch prefills `batch` prompts of this length.
        let prefill = cm.prefill_time(&m, &c, tokens * batch, 0).as_millis_f64();
        let decode = cm
            .decode_iter_time(&m, &c, batch, tokens * batch)
            .as_millis_f64();
        t.row(&[
            tokens.to_string(),
            format!("{prefill:.1}"),
            format!("{decode:.1}"),
        ]);
    }
    let mut out = t.render();
    out.push_str("paper shape: prefill scales ~linearly with prompt length; decode is ~flat.\n");
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn renders_six_rows_with_expected_shape() {
        let s = super::run();
        assert_eq!(
            s.lines()
                .filter(|l| l.starts_with(char::is_numeric))
                .count(),
            6
        );
        assert!(s.contains("4096"));
    }
}
