//! Extension experiment: the online observability plane watching a
//! bursty run.
//!
//! `exp_watch` replays the ShareGPT workload under a two-phase MMPP
//! arrival process (the same burst model as `exp_ext_bursty`) with the
//! windowed telemetry plane attached: tumbling windows of virtual time,
//! per-window health signals ([`HealthSignals`]), and the deterministic
//! alert-rules engine ([`default_rules`]) firing on queue buildup, SLO
//! burn and fault storms. The rendered report is the window table, a
//! queue-depth sparkline, and the alert timeline — the same artifacts
//! the windowed-JSONL export carries for `trace_check --windows`.

use engine::{EngineConfig, Mode, RunReport};
use models::ModelSpec;
use telemetry::{
    default_rules, run_with_windowed_telemetry, AlertEvent, AlertKind, HealthSignals, SloConfig,
    Telemetry, WindowSeries,
};
use workload::{Burstiness, Generator, ShareGptProfile};

use crate::{scaled_config, Scale, DEFAULT_SEED};

/// Default tumbling window width, seconds of virtual time.
pub const DEFAULT_WINDOW_SECS: f64 = 60.0;

/// Everything one watched run produces.
pub struct WatchRun {
    /// The unobserved-identical run report.
    pub report: RunReport,
    /// The full telemetry stack (trace + scalar hub + windowed hub).
    pub telemetry: Telemetry,
    /// The sealed window series.
    pub series: WindowSeries,
    /// Per-window health signals scored against the SLO.
    pub signals: HealthSignals,
    /// The alert transitions the stock rule set produced.
    pub alerts: Vec<AlertEvent>,
}

/// The bursty CachedAttention config the watch runs under.
pub fn watch_config(scale: Scale) -> EngineConfig {
    scaled_config(Mode::CachedAttention, ModelSpec::llama2_13b(), scale)
}

/// Runs the bursty workload with the windowed plane attached and scores
/// it against `slo`.
pub fn run_watch(scale: Scale, window_secs: f64, slo: SloConfig) -> WatchRun {
    let profile = ShareGptProfile::default().with_burstiness(Burstiness::default());
    let trace = Generator::new(profile, DEFAULT_SEED).trace(scale.sessions);
    let (report, telemetry) = run_with_windowed_telemetry(watch_config(scale), trace, window_secs);
    let series = telemetry
        .window_series()
        .expect("windowed telemetry always carries a series");
    let signals = HealthSignals::from_series(&series, &slo);
    let alerts = signals.evaluate(&default_rules(window_secs));
    WatchRun {
        report,
        telemetry,
        series,
        signals,
        alerts,
    }
}

/// Renders a u64 series as a unicode sparkline (one glyph per sample,
/// scaled to the series max).
pub fn sparkline(values: &[u64]) -> String {
    const GLYPHS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = values.iter().copied().max().unwrap_or(0);
    values
        .iter()
        .map(|&v| {
            if max == 0 {
                GLYPHS[0]
            } else {
                GLYPHS[(v as usize * (GLYPHS.len() - 1))
                    .div_ceil(max as usize)
                    .min(7)]
            }
        })
        .collect()
}

/// Renders the watch report: window table (strided to at most
/// `max_rows`), queue-depth sparkline, and the alert timeline.
pub fn render(run: &WatchRun, max_rows: usize) -> String {
    let mut out = String::new();
    let n = run.series.windows.len();
    out.push_str(&format!(
        "watch: {} windows x {:.0}s (SLO: ttft p99 <= {:.3}s)\n",
        n, run.series.width_secs, run.signals.slo.ttft_p99_target_secs
    ));
    out.push_str(&format!(
        "{:>4} {:>10} {:>7} {:>7} {:>7} {:>6} {:>10} {:>8} {:>8}\n",
        "win", "t_start", "arrived", "admit", "retired", "q_end", "ttft_p99", "burn", "faults/s"
    ));
    let opt = |v: Option<f64>| match v {
        Some(x) => format!("{x:.3}"),
        None => "-".to_string(),
    };
    let stride = n.div_ceil(max_rows.max(1)).max(1);
    for (w, p) in run
        .series
        .windows
        .iter()
        .zip(&run.signals.points)
        .step_by(stride)
    {
        out.push_str(&format!(
            "{:>4} {:>9.0}s {:>7} {:>7} {:>7} {:>6} {:>10} {:>8} {:>8.3}\n",
            w.index,
            w.start_secs,
            w.counters.turns_arrived,
            w.counters.admitted,
            w.counters.retired,
            w.queue_depth_end,
            opt(p.ttft_p99_secs),
            opt(p.slo_burn_rate),
            p.fault_rate_per_sec,
        ));
    }
    if stride > 1 {
        out.push_str(&format!(
            "  (every {stride}th window of {n}; full series in the windowed JSONL)\n"
        ));
    }
    let depths: Vec<u64> = run
        .series
        .windows
        .iter()
        .map(|w| w.queue_depth_end)
        .collect();
    out.push_str(&format!("queue depth  {}\n", sparkline(&depths)));
    if run.alerts.is_empty() {
        out.push_str("alerts: none fired\n");
    } else {
        out.push_str(&format!("alerts ({}):\n", run.alerts.len()));
        for a in &run.alerts {
            out.push_str(&format!(
                "  {:>9.0}s {:<14} {:<16} (window {}, {} = {:.3})\n",
                a.at_secs,
                a.kind.label(),
                a.rule,
                a.window,
                a.signal,
                a.value
            ));
        }
        let open: Vec<&AlertEvent> = run
            .alerts
            .iter()
            .filter(|a| {
                a.kind == AlertKind::Fired
                    && !run.alerts.iter().any(|b| {
                        b.kind == AlertKind::Resolved && b.rule == a.rule && b.at_secs > a.at_secs
                    })
            })
            .collect();
        if !open.is_empty() {
            out.push_str(&format!(
                "  still open at end of run: {}\n",
                open.iter()
                    .map(|a| a.rule.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            sessions: 40,
            warmup_turns: 0,
        }
    }

    #[test]
    fn watch_run_is_deterministic_and_contiguous() {
        let a = run_watch(tiny(), 30.0, SloConfig::new(1.0));
        let b = run_watch(tiny(), 30.0, SloConfig::new(1.0));
        assert_eq!(a.series.windows.len(), b.series.windows.len());
        assert_eq!(a.alerts.len(), b.alerts.len());
        for (x, y) in a.alerts.iter().zip(&b.alerts) {
            assert_eq!(x.rule, y.rule);
            assert_eq!(x.window, y.window);
        }
        for (i, w) in a.series.windows.iter().enumerate() {
            assert_eq!(w.index, i);
        }
        // The windowed plane reconciles with the scalar hub's totals.
        let totals = a.series.totals();
        let snap = a.telemetry.snapshot();
        assert_eq!(totals.counters.turns_arrived, snap.turns_arrived);
        assert_eq!(totals.counters.retired, snap.retired);
        assert_eq!(totals.ttft.count(), snap.ttft_count);
    }

    #[test]
    fn render_includes_table_sparkline_and_alert_section() {
        let run = run_watch(tiny(), 30.0, SloConfig::new(1.0));
        let text = render(&run, 12);
        assert!(text.contains("watch:"));
        assert!(text.contains("ttft_p99"));
        assert!(text.contains("queue depth"));
        assert!(text.contains("alert"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        assert_eq!(sparkline(&[]), "");
        assert_eq!(sparkline(&[0, 0]), "▁▁");
        let s = sparkline(&[0, 1, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
    }
}
