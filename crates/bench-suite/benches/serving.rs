//! Criterion benchmarks of the end-to-end serving simulator: wall-clock
//! cost of simulating the multi-turn workload under each mode, and the
//! per-prefill overlap computation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::overlap::{with_preload, PreloadParams};
use engine::{run_paper_workload, Mode};
use models::ModelSpec;
use sim::Dur;
use workload::{Generator, ShareGptProfile};

fn bench_serving_modes(c: &mut Criterion) {
    let trace = Generator::new(ShareGptProfile::default(), 11).trace(100);
    let mut g = c.benchmark_group("serving");
    g.sample_size(10);
    for mode in [
        Mode::CachedAttention,
        Mode::Recompute,
        Mode::CoupledOverflow,
    ] {
        g.bench_with_input(
            BenchmarkId::new("simulate_100_sessions", mode.label()),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let r = run_paper_workload(mode, ModelSpec::llama2_13b(), trace.clone(), 0);
                    black_box(r.sessions_done.get())
                })
            },
        );
    }
    g.finish();
}

fn bench_overlap_model(c: &mut Criterion) {
    c.bench_function("engine/preload_pipeline_80_layers", |b| {
        let p = PreloadParams {
            n_layers: 80,
            t_load_layer: Dur::from_micros(900),
            t_comp_layer: Dur::from_micros(400),
            buffer_layers: 15,
            warm: Dur::from_micros(13_500),
            delay: Dur::ZERO,
        };
        b.iter(|| black_box(with_preload(&p).done))
    });
}

criterion_group!(benches, bench_serving_modes, bench_overlap_model);
criterion_main!(benches);
