//! Criterion benchmark of observer overhead: the same fixed workload
//! simulated bare (`NullObserver`), with only the windowed aggregator
//! attached, and with the full telemetry stack (verbatim trace + scalar
//! hub + windowed hub). The windowed plane is designed to stay within a
//! few percent of the unobserved run; comparing the three medians here
//! is the overhead measurement the observability PR gates on.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{run_trace, run_with_observer, EngineConfig, Mode};
use models::ModelSpec;
use telemetry::{Telemetry, WindowedHub};
use workload::{Burstiness, Generator, ShareGptProfile};

const WINDOW_SECS: f64 = 60.0;

fn fixture() -> (EngineConfig, workload::Trace) {
    let profile = ShareGptProfile::default().with_burstiness(Burstiness::default());
    let trace = Generator::new(profile, 11).trace(100);
    let cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    (cfg, trace)
}

fn bench_observer_overhead(c: &mut Criterion) {
    let (cfg, trace) = fixture();
    let mut g = c.benchmark_group("observability");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("simulate", "bare"), &(), |b, ()| {
        b.iter(|| {
            let r = run_trace(cfg.clone(), trace.clone());
            black_box(r.sessions_done.get())
        })
    });

    g.bench_with_input(
        BenchmarkId::new("simulate", "windowed_hub"),
        &(),
        |b, ()| {
            b.iter(|| {
                let (r, hub) =
                    run_with_observer(cfg.clone(), trace.clone(), WindowedHub::new(WINDOW_SECS));
                black_box((r.sessions_done.get(), hub.series().windows.len()))
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("simulate", "full_telemetry"),
        &(),
        |b, ()| {
            b.iter(|| {
                let (r, tel) = run_with_observer(
                    cfg.clone(),
                    trace.clone(),
                    Telemetry::with_windows(WINDOW_SECS),
                );
                black_box((r.sessions_done.get(), tel.records().len()))
            })
        },
    );

    g.finish();
}

criterion_group!(benches, bench_observer_overhead);
criterion_main!(benches);
