//! Criterion benchmarks for the simulator's own hot paths — the scopes
//! the self-profile ranks highest on large runs.
//!
//! Four groups:
//!
//! - `queue_view`: building the cluster's merged look-ahead window from
//!   per-instance queues. Compares the allocating constructor
//!   (`QueueView::with_owners`, one fresh Vec + two fresh HashMaps per
//!   call) against the in-place `rebuild` on a retained view — the
//!   buffer-reuse fix `ClusterSim::merged_view` ships with.
//! - `window_maintenance`: `maintain_reserve` on a populated store — the
//!   demote-until-reserve-free loop `exp_scale` shows dominating large
//!   runs, driven by a full look-ahead window.
//! - `scope_guard`: one `scope!` in isolation, disabled vs enabled —
//!   the disabled path is what instrumented hot paths cost a normal
//!   run (the < 5% additivity claim), the enabled path is the price of
//!   asking for a profile.
//! - `self_profiler`: identical runs (micro cluster; the 13 golden
//!   scenarios) with the profiler off vs on — end-to-end enabled
//!   overhead, which scales inversely with per-event cost.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use engine::{run_cluster, ClusterConfig, EngineConfig, Mode, RouterKind};
use models::{ModelSpec, TierStack};
use sim::{profiler, ProfilerConfig, Time};
use store::{AttentionStore, PolicyKind, QueueView, SessionId, StoreConfig};
use workload::{Generator, ShareGptProfile};

const MB: u64 = 1_000_000;

fn bench_queue_view(c: &mut Criterion) {
    // A merged cluster queue of the size large scale runs see: a few
    // thousand queued sessions across the fleet.
    let order: Vec<SessionId> = (0..4096).map(SessionId).collect();
    let owners: Vec<u32> = (0..4096u32).map(|i| i % 8).collect();
    let mut g = c.benchmark_group("queue_view");

    g.bench_with_input(BenchmarkId::new("build", "fresh_alloc"), &(), |b, ()| {
        b.iter(|| {
            let view = QueueView::with_owners(&order, &owners);
            black_box(view.len())
        })
    });

    g.bench_with_input(BenchmarkId::new("build", "rebuild_reuse"), &(), |b, ()| {
        let mut view = QueueView::empty();
        b.iter(|| {
            view.rebuild(&order, &owners);
            black_box(view.len())
        })
    });
    g.finish();
}

fn bench_window_maintenance(c: &mut Criterion) {
    // A DRAM tier filled to the brim with cold sessions plus a reserve
    // requirement forces `maintain_reserve` through its demotion loop.
    let populated = || {
        let mut s = AttentionStore::new(StoreConfig {
            tiers: TierStack::two_tier(512 * MB, 4096 * MB),
            block_bytes: MB,
            policy: PolicyKind::SchedulerAware,
            ttl: None,
            dram_reserve_fraction: 0.2,
            default_session_bytes: MB,
            ..StoreConfig::default()
        });
        let empty = QueueView::empty();
        for i in 0..256u64 {
            s.save(SessionId(i), 2 * MB, 64, Time::ZERO, &empty);
        }
        s
    };
    let queued: Vec<SessionId> = (0..64).map(SessionId).collect();
    let owners: Vec<u32> = (0..64u32).map(|i| i % 4).collect();
    let queue = QueueView::with_owners(&queued, &owners);

    let mut g = c.benchmark_group("window_maintenance");
    // The populated store is rebuilt inside the timed body (the reserve
    // loop consumes it), so this measures fill + demote-until-free; the
    // comparison of interest is across commits, not against the other
    // groups.
    g.bench_with_input(
        BenchmarkId::new("maintain_reserve", "cold_dram"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut s = populated();
                let t = s.maintain_reserve(Time::from_millis(10), &queue);
                black_box(t.len())
            })
        },
    );
    g.finish();
}

fn bench_scope_guard(c: &mut Criterion) {
    let mut g = c.benchmark_group("scope_guard");

    // Disabled: what the compiled-in instrumentation costs a normal
    // (unprofiled) run — one relaxed atomic load and a branch per
    // scope. This is the "< 5% on the exp_profile scenarios" claim:
    // at ~1 ns x ~2.3 scopes/event against ~0.5 us/event, the
    // disabled macros tax those runs well under 1%.
    g.bench_with_input(BenchmarkId::new("scope", "disabled"), &(), |b, ()| {
        b.iter(|| {
            for i in 0..1024u64 {
                sim::scope!("bench.scope");
                black_box(i);
            }
        })
    });

    // Enabled: two clock reads plus thread-local stack bookkeeping per
    // scope — the price of asking for a profile, paid only then.
    g.bench_with_input(BenchmarkId::new("scope", "enabled"), &(), |b, ()| {
        profiler::begin(ProfilerConfig::default());
        b.iter(|| {
            for i in 0..1024u64 {
                sim::scope!("bench.scope");
                black_box(i);
            }
        });
        profiler::finish();
    });
    g.finish();
}

fn bench_self_profiler_overhead(c: &mut Criterion) {
    let engine = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    let cfg = ClusterConfig::new(engine, 2, RouterKind::SessionAffinity);
    let trace = Generator::new(ShareGptProfile::default(), 13).trace(60);

    let mut g = c.benchmark_group("self_profiler");
    g.sample_size(10);

    // Enabled-profiler overhead scales inversely with per-event cost:
    // the guard's fixed ~190 ns (two clock reads + TLS) is ~2% of wall
    // on `exp_scale --full` (expensive, queue-scan-heavy events) but
    // dominates micro runs like this one, whose events are ~0.5 us.
    g.bench_with_input(BenchmarkId::new("cluster_run", "off"), &(), |b, ()| {
        b.iter(|| {
            let r = run_cluster(cfg.clone(), trace.clone());
            black_box(r.aggregate.makespan_secs)
        })
    });

    g.bench_with_input(BenchmarkId::new("cluster_run", "on"), &(), |b, ()| {
        b.iter(|| {
            profiler::begin(ProfilerConfig::default());
            let r = run_cluster(cfg.clone(), trace.clone());
            let p = profiler::finish();
            black_box((r.aggregate.makespan_secs, p.events))
        })
    });

    // The 13 exp_profile golden scenarios with the profiler enabled vs
    // disabled. Single-engine runs go through the same 1-instance
    // cluster facade, so enabling the profiler pays the full per-event
    // scope cost here too — this group reports that price honestly;
    // the < 5% additivity claim is about the *disabled* path above.
    let scenarios = bench_suite::profile::golden_scenarios();
    let golden_trace = || Generator::new(ShareGptProfile::default(), 7).trace(20);

    g.bench_with_input(
        BenchmarkId::new("exp_profile_matrix", "off"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut done = 0u64;
                for (_, cfg) in &scenarios {
                    let r = engine::run_trace(cfg.clone(), golden_trace());
                    done += r.sessions_done.get();
                }
                black_box(done)
            })
        },
    );

    g.bench_with_input(
        BenchmarkId::new("exp_profile_matrix", "on"),
        &(),
        |b, ()| {
            b.iter(|| {
                let mut done = 0u64;
                profiler::begin(ProfilerConfig::default());
                for (_, cfg) in &scenarios {
                    let r = engine::run_trace(cfg.clone(), golden_trace());
                    done += r.sessions_done.get();
                }
                let p = profiler::finish();
                black_box((done, p.events))
            })
        },
    );
    g.finish();
}

criterion_group!(
    benches,
    bench_queue_view,
    bench_window_maintenance,
    bench_scope_guard,
    bench_self_profiler_overhead
);
criterion_main!(benches);
