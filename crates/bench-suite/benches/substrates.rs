//! Criterion micro-benchmarks of the substrate crates: event queue
//! throughput, AttentionStore operations, workload generation, cost-model
//! evaluation and the tiny transformer's forward pass.
//!
//! These measure the *simulator's own* performance (events/sec, store
//! ops/sec), complementing the `exp_*` binaries that regenerate the
//! paper's simulated results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use models::{ClusterSpec, CostModel, ModelSpec};
use sim::{Dur, EventQueue, SimRng, Time};
use store::{AttentionStore, PolicyKind, QueueView, SessionId, StoreConfig};
use tinyllm::{Model, PeMode, TinyConfig, Weights};
use workload::{Generator, ShareGptProfile};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("sim/event_queue_push_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.push(Time::from_nanos(i * 7919 % 100_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            black_box(sum)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    c.bench_function("sim/rng_mixed_draws_10k", |b| {
        b.iter(|| {
            let mut rng = SimRng::seed_from_u64(7);
            let mut acc = 0.0f64;
            for _ in 0..10_000 {
                acc += rng.exp(2.0) + rng.lognormal(4.0, 1.0);
            }
            black_box(acc)
        })
    });
}

fn bench_store(c: &mut Criterion) {
    let mut g = c.benchmark_group("store");
    for policy in [
        PolicyKind::SchedulerAware,
        PolicyKind::Lru,
        PolicyKind::Fifo,
    ] {
        g.bench_with_input(
            BenchmarkId::new("save_evict_churn", format!("{policy:?}")),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    let mut store = AttentionStore::new(StoreConfig {
                        tiers: models::TierStack::two_tier(4_000_000_000, 20_000_000_000),
                        block_bytes: 16 * 1024 * 1024,
                        policy,
                        ttl: None,
                        dram_reserve_fraction: 0.1,
                        default_session_bytes: 100_000_000,
                        ..StoreConfig::default()
                    });
                    let queue: Vec<SessionId> = (0..16).map(SessionId).collect();
                    let view = QueueView::new(&queue);
                    for i in 0..400u64 {
                        store.save(
                            SessionId(i % 64),
                            80_000_000 + (i % 7) * 10_000_000,
                            1_000,
                            Time::from_nanos(i),
                            &view,
                        );
                        if i % 3 == 0 {
                            store.load_for_use(
                                SessionId((i + 32) % 64),
                                Time::from_nanos(i),
                                &view,
                            );
                            store.unpin(SessionId((i + 32) % 64));
                        }
                        store.prefetch(Time::from_nanos(i), &view);
                    }
                    black_box(store.stats().saves)
                })
            },
        );
    }
    g.finish();
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("workload/generate_1k_sessions", |b| {
        b.iter(|| {
            let t = Generator::new(ShareGptProfile::default(), 3).trace(1_000);
            black_box(t.total_turns())
        })
    });
}

fn bench_cost_model(c: &mut Criterion) {
    let m = ModelSpec::llama2_70b();
    let cluster = ClusterSpec::paper_testbed();
    let cm = CostModel::default();
    c.bench_function("models/cost_eval_10k", |b| {
        b.iter(|| {
            let mut acc = Dur::ZERO;
            for i in 0..10_000u64 {
                acc += cm.prefill_time(&m, &cluster, 100 + i % 1000, i % 4096);
            }
            black_box(acc)
        })
    });
}

fn bench_tinyllm_forward(c: &mut Criterion) {
    let cfg = TinyConfig::table12();
    let model = Model::new(cfg.clone(), Weights::random(&cfg, 1));
    let tokens: Vec<usize> = (0..64).map(|i| i % cfg.vocab).collect();
    let mut g = c.benchmark_group("tinyllm");
    for mode in [PeMode::Decoupled, PeMode::Coupled] {
        g.bench_with_input(
            BenchmarkId::new("forward_64_tokens", format!("{mode:?}")),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    let mut cache = model.cache(mode);
                    black_box(model.forward(&tokens, &mut cache).len())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_rng,
    bench_store,
    bench_workload,
    bench_cost_model,
    bench_tinyllm_forward
);
criterion_main!(benches);
