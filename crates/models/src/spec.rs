//! Transformer architecture parameters that determine KV footprints.

use serde::{Deserialize, Serialize};

/// Element type of the cached K/V tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dtype {
    /// 16-bit floating point (the paper's setting for activations and KV).
    F16,
    /// 32-bit floating point.
    F32,
}

impl Dtype {
    /// Returns the element size in bytes.
    pub const fn bytes(self) -> u64 {
        match self {
            Dtype::F16 => 2,
            Dtype::F32 => 4,
        }
    }
}

/// Architecture parameters of a served LLM.
///
/// Only the quantities that affect serving-time behaviour are captured:
/// parameter count (compute/weight traffic), layer/head geometry (KV cache
/// size and per-layer transfer granularity) and the context window
/// (truncation trigger, §3.4).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelSpec {
    /// Display name used in reports.
    pub name: &'static str,
    /// Total parameter count.
    pub n_params: u64,
    /// Number of transformer layers.
    pub n_layers: u32,
    /// Number of attention (query) heads.
    pub n_heads: u32,
    /// Number of key/value heads (`< n_heads` under GQA/MQA).
    pub n_kv_heads: u32,
    /// Dimension of each head.
    pub head_dim: u32,
    /// Model (embedding) dimension.
    pub hidden: u32,
    /// FFN intermediate dimension.
    pub ffn_hidden: u32,
    /// Maximum context window in tokens.
    pub context_window: u32,
    /// Element type of the KV cache.
    pub kv_dtype: Dtype,
}

impl ModelSpec {
    /// KV cache bytes produced per token across all layers.
    ///
    /// Two tensors (K and V), each `n_kv_heads * head_dim` elements, per
    /// layer. The paper quotes 2.5 MB (LLaMA-65B), 0.78 MB (13B), 0.31 MB
    /// (70B) and 0.12 MB (Falcon-40B) per token.
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.n_layers as u64
            * self.n_kv_heads as u64
            * self.head_dim as u64
            * self.kv_dtype.bytes()
    }

    /// KV cache bytes per token for a single layer.
    pub fn kv_bytes_per_token_layer(&self) -> u64 {
        self.kv_bytes_per_token() / self.n_layers as u64
    }

    /// KV cache bytes for a sequence of `tokens` tokens.
    pub fn kv_bytes(&self, tokens: u64) -> u64 {
        tokens * self.kv_bytes_per_token()
    }

    /// Group-query attention factor (`n_heads / n_kv_heads`; 1 = MHA).
    pub fn gqa_factor(&self) -> u32 {
        self.n_heads / self.n_kv_heads
    }

    /// Model weight bytes at the KV dtype (used for HBM-residency
    /// accounting and decode bandwidth costs).
    pub fn weight_bytes(&self) -> u64 {
        self.n_params * self.kv_dtype.bytes()
    }

    /// LLaMA-2 13B (4K context). Paper's two-GPU model.
    pub fn llama2_13b() -> Self {
        ModelSpec {
            name: "LLaMA-13B",
            n_params: 13_000_000_000,
            n_layers: 40,
            n_heads: 40,
            n_kv_heads: 40,
            head_dim: 128,
            hidden: 5120,
            ffn_hidden: 13824,
            context_window: 4096,
            kv_dtype: Dtype::F16,
        }
    }

    /// LLaMA-1 65B (2K context; its small window drives the overflow
    /// results in §4.3.4).
    pub fn llama1_65b() -> Self {
        ModelSpec {
            name: "LLaMA-65B",
            n_params: 65_000_000_000,
            n_layers: 80,
            n_heads: 64,
            n_kv_heads: 64,
            head_dim: 128,
            hidden: 8192,
            ffn_hidden: 22016,
            context_window: 2048,
            kv_dtype: Dtype::F16,
        }
    }

    /// LLaMA-2 70B (4K context, GQA factor 8).
    pub fn llama2_70b() -> Self {
        ModelSpec {
            name: "LLaMA-70B",
            n_params: 70_000_000_000,
            n_layers: 80,
            n_heads: 64,
            n_kv_heads: 8,
            head_dim: 128,
            hidden: 8192,
            ffn_hidden: 28672,
            context_window: 4096,
            kv_dtype: Dtype::F16,
        }
    }

    /// Falcon-40B (2K context, GQA factor 16).
    pub fn falcon_40b() -> Self {
        ModelSpec {
            name: "Falcon-40B",
            n_params: 40_000_000_000,
            n_layers: 60,
            n_heads: 128,
            n_kv_heads: 8,
            head_dim: 64,
            hidden: 8192,
            ffn_hidden: 32768,
            context_window: 2048,
            kv_dtype: Dtype::F16,
        }
    }

    /// Mistral-7B with the 32K context window used in §4.1.
    pub fn mistral_7b() -> Self {
        ModelSpec {
            name: "Mistral-7B",
            n_params: 7_300_000_000,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 8,
            head_dim: 128,
            hidden: 4096,
            ffn_hidden: 14336,
            context_window: 32768,
            kv_dtype: Dtype::F16,
        }
    }

    /// LLaMA-1 7B (2K context), used for Tables 1–2.
    pub fn llama1_7b() -> Self {
        ModelSpec {
            name: "LLaMA-7B",
            n_params: 6_700_000_000,
            n_layers: 32,
            n_heads: 32,
            n_kv_heads: 32,
            head_dim: 128,
            hidden: 4096,
            ffn_hidden: 11008,
            context_window: 2048,
            kv_dtype: Dtype::F16,
        }
    }

    /// OPT-13B (2K context), referenced in §2.4's overflow analysis.
    pub fn opt_13b() -> Self {
        ModelSpec {
            name: "OPT-13B",
            n_params: 13_000_000_000,
            n_layers: 40,
            n_heads: 40,
            n_kv_heads: 40,
            head_dim: 128,
            hidden: 5120,
            ffn_hidden: 20480,
            context_window: 2048,
            kv_dtype: Dtype::F16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: f64 = 1_000_000.0;

    /// The paper quotes per-token KV sizes in §4.2; pin them within 10%.
    #[test]
    fn kv_per_token_matches_paper_quotes() {
        let cases = [
            (ModelSpec::llama2_13b(), 0.78),
            (ModelSpec::llama1_65b(), 2.5),
            (ModelSpec::llama2_70b(), 0.31),
            (ModelSpec::falcon_40b(), 0.12),
        ];
        for (m, expect_mb) in cases {
            let got = m.kv_bytes_per_token() as f64 / MB;
            let rel = (got - expect_mb).abs() / expect_mb;
            assert!(
                rel < 0.10,
                "{}: got {got} MB/token, paper {expect_mb}",
                m.name
            );
        }
    }

    /// §2.4: 2K tokens of LLaMA-65B KV occupy ~5 GB.
    #[test]
    fn llama65b_2k_tokens_is_about_5gb() {
        let m = ModelSpec::llama1_65b();
        let gb = m.kv_bytes(2048) as f64 / 1e9;
        assert!((gb - 5.0).abs() < 0.5, "got {gb} GB");
    }

    #[test]
    fn gqa_factors_match_paper() {
        assert_eq!(ModelSpec::llama2_70b().gqa_factor(), 8);
        assert_eq!(ModelSpec::falcon_40b().gqa_factor(), 16);
        assert_eq!(ModelSpec::llama2_13b().gqa_factor(), 1);
    }

    #[test]
    fn per_layer_kv_times_layers_is_total() {
        for m in [
            ModelSpec::llama2_13b(),
            ModelSpec::llama1_65b(),
            ModelSpec::llama2_70b(),
            ModelSpec::falcon_40b(),
            ModelSpec::mistral_7b(),
        ] {
            assert_eq!(
                m.kv_bytes_per_token_layer() * m.n_layers as u64,
                m.kv_bytes_per_token()
            );
        }
    }

    #[test]
    fn context_windows_match_model_families() {
        assert_eq!(ModelSpec::llama1_65b().context_window, 2048);
        assert_eq!(ModelSpec::llama2_70b().context_window, 4096);
        assert_eq!(ModelSpec::opt_13b().context_window, 2048);
        assert_eq!(ModelSpec::mistral_7b().context_window, 32768);
    }
}
