//! Analytic latency model for prefill and decode.
//!
//! Prefill is compute-bound: time = FLOPs / (aggregate FP16 throughput ×
//! model FLOP utilization). Decode is memory-bound: every iteration streams
//! the weights plus the live KV cache through HBM once. Both match the
//! phase characteristics of Figure 1 and are calibrated so LLaMA-65B
//! prefilling 2K tokens on 4×A100 takes ~360 ms (§2.4).

use serde::{Deserialize, Serialize};
use sim::Dur;

use crate::{ClusterSpec, ModelSpec};

/// Latency model parameters.
///
/// # Examples
///
/// ```
/// use models::{ClusterSpec, CostModel, ModelSpec};
///
/// let (m, c, cm) = (
///     ModelSpec::llama1_65b(),
///     ClusterSpec::paper_testbed(),
///     CostModel::default(),
/// );
/// // The paper's §2.4 anchor: ~360 ms to prefill 2K tokens on 4×A100.
/// let ms = cm.prefill_time(&m, &c, 2048, 0).as_millis_f64();
/// assert!((340.0..390.0).contains(&ms));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// Model FLOP utilization during prefill (fraction of peak).
    pub prefill_mfu: f64,
    /// Memory bandwidth utilization during decode (fraction of peak).
    pub decode_mbu: f64,
    /// Fixed per-iteration overhead (kernel launches, scheduling).
    pub iter_overhead: Dur,
}

impl Default for CostModel {
    /// Calibrated defaults: `prefill_mfu = 0.59` reproduces the paper's
    /// 360 ms / 2K-token LLaMA-65B anchor; `decode_mbu = 0.9` reflects the
    /// near-peak bandwidth efficiency of batched decoding and puts 70B
    /// batch-8 decode iterations in the tens of milliseconds as in Fig 1b.
    fn default() -> Self {
        CostModel {
            prefill_mfu: 0.59,
            decode_mbu: 0.9,
            iter_overhead: Dur::from_micros(100),
        }
    }
}

impl CostModel {
    /// Calibration matching the paper's *end-to-end system* (§4.1: PyTorch
    /// + HuggingFace Transformers, no fused attention kernels).
    ///
    /// The §2.4 anchor (360 ms for a 2K-token LLaMA-65B prefill) reflects
    /// near-optimal utilization, but the evaluation numbers do not: an
    /// ~85% TTFT reduction down to 0.122 s for LLaMA-13B (Figures 14/25)
    /// puts the RE prefill of a ~2.5K-token prompt at ~0.8 s on two A100s,
    /// i.e. ~10–12% MFU, and the reported GPU hours imply similarly
    /// modest decode bandwidth efficiency. The end-to-end experiments
    /// (Figures 13–17, 21–25) use this calibration; the
    /// microbenchmark-flavoured ones (Figure 1) use [`CostModel::default`].
    pub fn paper_system() -> Self {
        CostModel {
            prefill_mfu: 0.12,
            decode_mbu: 0.45,
            iter_overhead: Dur::from_micros(300),
        }
    }

    /// FLOPs to prefill `new` tokens given `past` tokens already cached.
    ///
    /// Weight GEMMs contribute `2 * n_params` per token; attention
    /// contributes two matmuls (`QKᵀ` and `A·V`) per layer per head, where
    /// new token `t` attends to `past + t` positions.
    pub fn prefill_flops(&self, m: &ModelSpec, new: u64, past: u64) -> f64 {
        let weight = 2.0 * m.n_params as f64 * new as f64;
        // Sum over new tokens of attended positions: new*past + new²/2.
        let attended = new as f64 * past as f64 + (new as f64).powi(2) / 2.0;
        let attn = 4.0 * m.n_layers as f64 * m.hidden as f64 * attended;
        weight + attn
    }

    /// Wall-clock time to prefill `new` tokens on `c` with `past` cached.
    pub fn prefill_time(&self, m: &ModelSpec, c: &ClusterSpec, new: u64, past: u64) -> Dur {
        if new == 0 {
            return Dur::ZERO;
        }
        let secs = self.prefill_flops(m, new, past) / (c.total_flops() * self.prefill_mfu);
        Dur::from_secs_f64(secs) + self.iter_overhead
    }

    /// Per-layer slice of the prefill time (layer-wise overlap model,
    /// §3.2.1 treats compute as evenly divided across layers).
    pub fn prefill_layer_time(&self, m: &ModelSpec, c: &ClusterSpec, new: u64, past: u64) -> Dur {
        self.prefill_time(m, c, new, past) / m.n_layers as u64
    }

    /// Wall-clock time of one decode iteration for a batch whose sequences
    /// hold `total_ctx_tokens` live tokens in aggregate.
    ///
    /// Weights stream through HBM once per iteration regardless of batch
    /// size; the KV read scales with the aggregate context. The batch-size
    /// FLOP term is negligible for the batch sizes used here but included
    /// for completeness.
    pub fn decode_iter_time(
        &self,
        m: &ModelSpec,
        c: &ClusterSpec,
        batch: u64,
        total_ctx_tokens: u64,
    ) -> Dur {
        if batch == 0 {
            return Dur::ZERO;
        }
        let bw = c.total_hbm_bw() * self.decode_mbu;
        let weights = m.weight_bytes() as f64 / bw;
        let kv = (total_ctx_tokens * m.kv_bytes_per_token()) as f64 / bw;
        let flops = 2.0 * m.n_params as f64 * batch as f64 / (c.total_flops() * self.prefill_mfu);
        Dur::from_secs_f64(weights + kv + flops) + self.iter_overhead
    }

    /// Average KV cache generation rate during a prefill, bytes/s.
    ///
    /// §2.4 quotes ~13.9 GB/s for LLaMA-65B prefilling 2K tokens.
    pub fn kv_gen_rate(&self, m: &ModelSpec, c: &ClusterSpec, prompt: u64) -> f64 {
        let t = self.prefill_time(m, c, prompt, 0).as_secs_f64();
        if t == 0.0 {
            return 0.0;
        }
        m.kv_bytes(prompt) as f64 / t
    }

    /// Time to move `bytes` of KV over PCIe in one direction.
    pub fn pcie_time(&self, c: &ClusterSpec, bytes: u64) -> Dur {
        Dur::from_secs_f64(bytes as f64 / c.pcie_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn anchor() -> (ModelSpec, ClusterSpec, CostModel) {
        (
            ModelSpec::llama1_65b(),
            ClusterSpec::paper_testbed(),
            CostModel::default(),
        )
    }

    /// §2.4 anchor: LLaMA-65B prefills 2K tokens in ~360 ms on 4×A100.
    #[test]
    fn llama65b_prefill_2k_near_360ms() {
        let (m, c, cm) = anchor();
        let ms = cm.prefill_time(&m, &c, 2048, 0).as_millis_f64();
        assert!((340.0..390.0).contains(&ms), "got {ms} ms");
    }

    /// §2.4 anchor: the same prefill generates KV at ~13.9 GB/s.
    #[test]
    fn llama65b_kv_gen_rate_near_13_9_gbps() {
        let (m, c, cm) = anchor();
        let rate = cm.kv_gen_rate(&m, &c, 2048) / 1e9;
        assert!((12.5..15.5).contains(&rate), "got {rate} GB/s");
    }

    /// §2.4 anchor: loading the 5 GB KV over 26 GB/s PCIe takes ~192 ms.
    #[test]
    fn pcie_load_of_2k_kv_near_192ms() {
        let (m, c, cm) = anchor();
        let ms = cm.pcie_time(&c, m.kv_bytes(2048)).as_millis_f64();
        assert!((185.0..210.0).contains(&ms), "got {ms} ms");
    }

    /// Fig 1b: decode iteration latency is roughly flat in prompt length
    /// (weights dominate) while prefill grows.
    #[test]
    fn decode_is_flat_prefill_grows() {
        let m = ModelSpec::llama2_70b();
        let c = ClusterSpec::paper_testbed();
        let cm = CostModel::default();
        let d_short = cm.decode_iter_time(&m, &c, 8, 8 * 128).as_secs_f64();
        let d_long = cm.decode_iter_time(&m, &c, 8, 8 * 2048).as_secs_f64();
        assert!(d_long / d_short < 1.2, "decode grew {}x", d_long / d_short);
        let p_short = cm.prefill_time(&m, &c, 128, 0).as_secs_f64();
        let p_long = cm.prefill_time(&m, &c, 2048, 0).as_secs_f64();
        assert!(
            p_long / p_short > 10.0,
            "prefill grew only {}x",
            p_long / p_short
        );
    }

    /// Fig 1b scale check: 70B batch-8 decode iterations are tens of ms.
    #[test]
    fn llama70b_decode_iter_in_tens_of_ms() {
        let m = ModelSpec::llama2_70b();
        let c = ClusterSpec::paper_testbed();
        let cm = CostModel::default();
        let ms = cm.decode_iter_time(&m, &c, 8, 8 * 1024).as_millis_f64();
        assert!((15.0..80.0).contains(&ms), "got {ms} ms");
    }

    #[test]
    fn zero_token_cases_cost_nothing() {
        let (m, c, cm) = anchor();
        assert_eq!(cm.prefill_time(&m, &c, 0, 1000), Dur::ZERO);
        assert_eq!(cm.decode_iter_time(&m, &c, 0, 0), Dur::ZERO);
    }

    proptest! {
        /// Prefill time is monotone in both new and past token counts.
        #[test]
        fn prefill_monotone(new in 1u64..4096, past in 0u64..8192, extra in 1u64..512) {
            let (m, c, cm) = anchor();
            let base = cm.prefill_time(&m, &c, new, past);
            prop_assert!(cm.prefill_time(&m, &c, new + extra, past) >= base);
            prop_assert!(cm.prefill_time(&m, &c, new, past + extra) >= base);
        }

        /// Per-layer times sum back to the whole prefill (within rounding).
        #[test]
        fn layer_times_sum_to_total(new in 1u64..4096, past in 0u64..4096) {
            let (m, c, cm) = anchor();
            let total = cm.prefill_time(&m, &c, new, past).as_nanos() as i128;
            let layered =
                (cm.prefill_layer_time(&m, &c, new, past).as_nanos() * m.n_layers as u64) as i128;
            prop_assert!((total - layered).abs() <= m.n_layers as i128);
        }

        /// Decode cost grows with aggregate context but stays bounded by
        /// the pure-bandwidth bound plus overheads.
        #[test]
        fn decode_monotone_in_context(ctx in 0u64..100_000, extra in 1u64..10_000) {
            let (m, c, cm) = anchor();
            prop_assert!(
                cm.decode_iter_time(&m, &c, 8, ctx + extra) >= cm.decode_iter_time(&m, &c, 8, ctx)
            );
        }
    }
}
