#![warn(missing_docs)]

//! Model and hardware descriptions plus the analytic GPU cost model.
//!
//! The CachedAttention paper evaluates on real A100 clusters; this crate is
//! the substitution: [`ModelSpec`] captures the architecture parameters that
//! determine KV cache footprints, [`ClusterSpec`] captures the hardware
//! bandwidths/capacities, and [`CostModel`] turns (model, cluster, token
//! counts) into prefill/decode latencies.
//!
//! The cost model is calibrated against the paper's own anchor numbers
//! (§2.4): LLaMA-65B on 4×A100 prefills 2K tokens in ~360 ms, producing
//! 5 GB of KV cache (2.5 MB/token) at ~13.9 GB/s, while PCIe Gen4 ×16 moves
//! ~26 GB/s. Unit tests pin those anchors.

mod cost;
mod hw;
mod spec;

pub use cost::CostModel;
pub use hw::{ClusterSpec, GpuSpec, TierSpec, TierStack};
pub use spec::{Dtype, ModelSpec};

/// Returns the four models used in the paper's end-to-end evaluation
/// (Figures 13–17, 22, 24): LLaMA-2-13B, LLaMA-1-65B, LLaMA-2-70B and
/// Falcon-40B.
pub fn evaluation_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec::llama2_13b(),
        ModelSpec::llama1_65b(),
        ModelSpec::llama2_70b(),
        ModelSpec::falcon_40b(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evaluation_set_matches_paper() {
        let names: Vec<&str> = evaluation_models().iter().map(|m| m.name).collect();
        assert_eq!(
            names,
            vec!["LLaMA-13B", "LLaMA-65B", "LLaMA-70B", "Falcon-40B"]
        );
    }
}
