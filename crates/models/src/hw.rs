//! GPU and cluster hardware descriptions.

use serde::Serialize;

/// One GPU's compute and memory characteristics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Display name.
    pub name: &'static str,
    /// Peak FP16 tensor throughput, FLOP/s.
    pub flops_f16: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth, bytes/s.
    pub hbm_bw: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80G: 312 TFLOP/s FP16, 80 GB HBM2e at ~2 TB/s.
    pub fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G",
            flops_f16: 312e12,
            hbm_bytes: 80_000_000_000,
            hbm_bw: 2.0e12,
        }
    }
}

/// The serving node: GPUs plus the AttentionStore storage hierarchy.
///
/// Defaults mirror the paper's testbed (§4.1): 4×A100-80G, PCIe Gen4 ×16
/// at ~26 GB/s effective, 128 GB DRAM, 10 TB SSD at under 5 GB/s.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Per-GPU characteristics.
    pub gpu: GpuSpec,
    /// Number of GPUs the model is sharded across.
    pub n_gpus: u32,
    /// Effective host↔device bandwidth per direction, bytes/s.
    pub pcie_bw: f64,
    /// Host DRAM available to AttentionStore, bytes.
    pub dram_bytes: u64,
    /// SSD capacity available to AttentionStore, bytes.
    pub disk_bytes: u64,
    /// SSD read bandwidth, bytes/s.
    pub disk_read_bw: f64,
    /// SSD write bandwidth, bytes/s.
    pub disk_write_bw: f64,
}

impl ClusterSpec {
    /// The paper's testbed: 4×A100-80G, 128 GB DRAM, 10 TB SSD.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100_80g(),
            n_gpus: 4,
            pcie_bw: 26e9,
            dram_bytes: 128_000_000_000,
            disk_bytes: 10_000_000_000_000,
            disk_read_bw: 4.0e9,
            disk_write_bw: 3.0e9,
        }
    }

    /// Returns a copy running on `n` GPUs (LLaMA-13B uses 2 in §4.1).
    pub fn with_gpus(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one GPU");
        self.n_gpus = n;
        self
    }

    /// Returns a copy with `bytes` of host DRAM for AttentionStore.
    pub fn with_dram(mut self, bytes: u64) -> Self {
        self.dram_bytes = bytes;
        self
    }

    /// Returns a copy with `bytes` of SSD for AttentionStore.
    pub fn with_disk(mut self, bytes: u64) -> Self {
        self.disk_bytes = bytes;
        self
    }

    /// Aggregate FP16 throughput across GPUs, FLOP/s.
    pub fn total_flops(&self) -> f64 {
        self.gpu.flops_f16 * self.n_gpus as f64
    }

    /// Aggregate HBM bandwidth across GPUs, bytes/s.
    pub fn total_hbm_bw(&self) -> f64 {
        self.gpu.hbm_bw * self.n_gpus as f64
    }

    /// Aggregate HBM capacity across GPUs, bytes.
    pub fn total_hbm_bytes(&self) -> u64 {
        self.gpu.hbm_bytes * self.n_gpus as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_4_1() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.n_gpus, 4);
        assert_eq!(c.dram_bytes, 128_000_000_000);
        assert_eq!(c.disk_bytes, 10_000_000_000_000);
        assert!((c.pcie_bw - 26e9).abs() < 1.0);
        assert!(c.disk_read_bw < 5e9, "paper: disks under 5 GB/s");
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterSpec::paper_testbed()
            .with_gpus(2)
            .with_dram(1)
            .with_disk(2);
        assert_eq!(c.n_gpus, 2);
        assert_eq!(c.dram_bytes, 1);
        assert_eq!(c.disk_bytes, 2);
    }

    #[test]
    fn aggregates_scale_with_gpu_count() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.total_flops(), 4.0 * 312e12);
        assert_eq!(c.total_hbm_bytes(), 320_000_000_000);
    }
}
