//! GPU and cluster hardware descriptions, including the storage tier
//! stack backing the AttentionStore.

use serde::{Deserialize, Error, Serialize, Value};

/// One GPU's compute and memory characteristics.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct GpuSpec {
    /// Display name.
    pub name: &'static str,
    /// Peak FP16 tensor throughput, FLOP/s.
    pub flops_f16: f64,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth, bytes/s.
    pub hbm_bw: f64,
}

impl GpuSpec {
    /// NVIDIA A100-80G: 312 TFLOP/s FP16, 80 GB HBM2e at ~2 TB/s.
    pub fn a100_80g() -> Self {
        GpuSpec {
            name: "A100-80G",
            flops_f16: 312e12,
            hbm_bytes: 80_000_000_000,
            hbm_bw: 2.0e12,
        }
    }
}

/// One storage tier of the KV-cache hierarchy, ordered fastest first in a
/// [`TierStack`] (index 0 is the staging tier the engine reads from).
///
/// Tiers are *data, not code*: the paper's DRAM/SSD pair is just the
/// default two-element stack, and deeper hierarchies (remote pooled
/// memory, object storage) are extra entries with their own bandwidths,
/// per-hop latency and rental price.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TierSpec {
    /// Display name; keys telemetry counters and Chrome-trace tracks.
    pub name: &'static str,
    /// Capacity available to the store, bytes.
    pub capacity: u64,
    /// Read (promotion) bandwidth when fetching *from* this tier, bytes/s.
    pub read_bw: f64,
    /// Write (demotion/spill) bandwidth into this tier, bytes/s.
    pub write_bw: f64,
    /// Fixed per-transfer setup latency when crossing into or out of this
    /// tier, seconds. The paper's DRAM/SSD model folds latency into
    /// bandwidth, so both default tiers use 0.0 (keeping the golden
    /// fixtures bit-identical); remote tiers model their RTT here.
    pub latency: f64,
    /// Rental price, $ per GB per hour (the §4.2 cost-analysis inputs).
    pub dollars_per_gb: f64,
}

impl TierSpec {
    /// Host DRAM at the paper's EC2 price ($0.0088/GB·h). Bandwidth is
    /// the effective host-link rate; tier-0 bandwidths are only consulted
    /// when a *deeper* tier stages through this one.
    pub fn dram(capacity: u64) -> Self {
        TierSpec {
            name: "dram",
            capacity,
            read_bw: 26e9,
            write_bw: 26e9,
            latency: 0.0,
            dollars_per_gb: 0.0088,
        }
    }

    /// Remote pooled memory: an RDMA-class link (~12.5 GB/s, a few µs of
    /// RTT) between host DRAM and SSD, priced at half the DRAM rate.
    pub fn pooled_memory(capacity: u64) -> Self {
        TierSpec {
            name: "pooled",
            capacity,
            read_bw: 12.5e9,
            write_bw: 12.5e9,
            latency: 3e-6,
            dollars_per_gb: 0.0044,
        }
    }

    /// Local SSD matching the paper's testbed: 4 GB/s read, 3 GB/s write,
    /// $0.000082/GB·h.
    pub fn ssd(capacity: u64) -> Self {
        TierSpec {
            name: "disk",
            capacity,
            read_bw: 4.0e9,
            write_bw: 3.0e9,
            latency: 0.0,
            dollars_per_gb: 0.000082,
        }
    }

    /// Object storage below SSD: ~1 GB/s streaming reads, tens of ms of
    /// first-byte latency, S3-class pricing (~$0.023/GB·month).
    pub fn object_store(capacity: u64) -> Self {
        TierSpec {
            name: "object",
            capacity,
            read_bw: 1.0e9,
            write_bw: 0.5e9,
            latency: 0.05,
            dollars_per_gb: 0.000032,
        }
    }

    /// Returns a copy with a different capacity.
    pub fn with_capacity(mut self, bytes: u64) -> Self {
        self.capacity = bytes;
        self
    }

    /// Hourly rental cost of the whole tier, dollars.
    pub fn dollars_per_hour(&self) -> f64 {
        self.capacity as f64 / 1e9 * self.dollars_per_gb
    }
}

/// Interns a deserialized tier name: well-known names map to their static
/// labels, novel ones are leaked once (tier vocabularies are tiny and
/// config-lifetime, so the leak is bounded and intentional).
fn intern_tier_name(name: &str) -> &'static str {
    match name {
        "dram" => "dram",
        "pooled" => "pooled",
        "disk" => "disk",
        "object" => "object",
        "hbm" => "hbm",
        other => Box::leak(other.to_string().into_boxed_str()),
    }
}

impl Deserialize for TierSpec {
    /// Hand-written because `name` is a `&'static str`: well-known names
    /// resolve to their static labels, unknown ones are interned.
    fn from_value(v: &Value) -> Result<Self, Error> {
        let field = |key: &str| {
            v.get(key)
                .ok_or_else(|| Error::custom(format!("TierSpec missing field `{key}`")))
        };
        let name = match field("name")? {
            Value::Str(s) => intern_tier_name(s),
            other => {
                return Err(Error::custom(format!(
                    "TierSpec name must be a string, got {}",
                    other.kind()
                )))
            }
        };
        Ok(TierSpec {
            name,
            capacity: u64::from_value(field("capacity")?)?,
            read_bw: f64::from_value(field("read_bw")?)?,
            write_bw: f64::from_value(field("write_bw")?)?,
            latency: f64::from_value(field("latency")?)?,
            dollars_per_gb: f64::from_value(field("dollars_per_gb")?)?,
        })
    }
}

/// An ordered stack of storage tiers, fastest first.
///
/// Index 0 is the staging tier the serving engine reads KV from; every
/// deeper tier is reached hop-by-adjacent-hop (tier `t` only ever
/// exchanges data with tiers `t±1`). The paper's hierarchy is
/// [`TierStack::paper_two_tier`]; [`TierStack::push`] grows it downward.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TierStack(pub Vec<TierSpec>);

impl TierStack {
    /// Builds a stack from tiers ordered fastest first.
    ///
    /// # Panics
    ///
    /// Panics on an empty tier list.
    pub fn new(tiers: Vec<TierSpec>) -> Self {
        assert!(!tiers.is_empty(), "a tier stack needs at least one tier");
        TierStack(tiers)
    }

    /// The paper's §4.1 hierarchy: 128 GB host DRAM over 10 TB SSD.
    pub fn paper_two_tier() -> Self {
        TierStack::two_tier(128_000_000_000, 10_000_000_000_000)
    }

    /// A DRAM/SSD pair with explicit capacities (the pre-refactor
    /// `dram_bytes`/`disk_bytes` shape).
    pub fn two_tier(dram_bytes: u64, disk_bytes: u64) -> Self {
        TierStack(vec![TierSpec::dram(dram_bytes), TierSpec::ssd(disk_bytes)])
    }

    /// Number of tiers.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Always `false` (construction rejects empty stacks); provided for
    /// clippy's `len_without_is_empty`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The tier at `index`, if in bounds.
    pub fn get(&self, index: usize) -> Option<&TierSpec> {
        self.0.get(index)
    }

    /// Iterates tiers fastest first.
    pub fn iter(&self) -> std::slice::Iter<'_, TierSpec> {
        self.0.iter()
    }

    /// Appends a tier below the current bottom and returns the stack.
    pub fn push(mut self, tier: TierSpec) -> Self {
        self.0.push(tier);
        self
    }

    /// Total capacity across every tier, bytes.
    pub fn total_capacity(&self) -> u64 {
        self.0.iter().map(|t| t.capacity).sum()
    }

    /// Capacity below tier 0 (everything that must be staged up), bytes.
    pub fn slow_capacity(&self) -> u64 {
        self.0.iter().skip(1).map(|t| t.capacity).sum()
    }

    /// Hourly rental cost of the whole stack, dollars.
    pub fn dollars_per_hour(&self) -> f64 {
        self.0.iter().map(TierSpec::dollars_per_hour).sum()
    }
}

impl std::ops::Index<usize> for TierStack {
    type Output = TierSpec;

    fn index(&self, index: usize) -> &TierSpec {
        &self.0[index]
    }
}

impl std::ops::IndexMut<usize> for TierStack {
    fn index_mut(&mut self, index: usize) -> &mut TierSpec {
        &mut self.0[index]
    }
}

impl<'a> IntoIterator for &'a TierStack {
    type Item = &'a TierSpec;
    type IntoIter = std::slice::Iter<'a, TierSpec>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

/// The serving node: GPUs plus the AttentionStore storage tier stack.
///
/// Defaults mirror the paper's testbed (§4.1): 4×A100-80G, PCIe Gen4 ×16
/// at ~26 GB/s effective, and a two-tier stack of 128 GB DRAM over 10 TB
/// SSD at under 5 GB/s.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ClusterSpec {
    /// Per-GPU characteristics.
    pub gpu: GpuSpec,
    /// Number of GPUs the model is sharded across.
    pub n_gpus: u32,
    /// Effective host↔device bandwidth per direction, bytes/s.
    pub pcie_bw: f64,
    /// Storage tiers available to AttentionStore, fastest first.
    pub tiers: TierStack,
}

impl ClusterSpec {
    /// The paper's testbed: 4×A100-80G, 128 GB DRAM, 10 TB SSD.
    pub fn paper_testbed() -> Self {
        ClusterSpec {
            gpu: GpuSpec::a100_80g(),
            n_gpus: 4,
            pcie_bw: 26e9,
            tiers: TierStack::paper_two_tier(),
        }
    }

    /// Returns a copy running on `n` GPUs (LLaMA-13B uses 2 in §4.1).
    pub fn with_gpus(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one GPU");
        self.n_gpus = n;
        self
    }

    /// Returns a copy with `bytes` of capacity in the fast tier (tier 0).
    pub fn with_dram(mut self, bytes: u64) -> Self {
        self.tiers[0].capacity = bytes;
        self
    }

    /// Returns a copy with `bytes` of capacity in tier 1 (the paper's
    /// SSD slot).
    pub fn with_disk(mut self, bytes: u64) -> Self {
        assert!(self.tiers.len() > 1, "stack has no tier below DRAM");
        self.tiers[1].capacity = bytes;
        self
    }

    /// Returns a copy with an entirely different tier stack.
    pub fn with_tiers(mut self, tiers: TierStack) -> Self {
        self.tiers = tiers;
        self
    }

    /// Capacity of the fast tier (tier 0), bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.tiers[0].capacity
    }

    /// Capacity below the fast tier, bytes (tier 1 alone in the paper's
    /// two-tier stack).
    pub fn disk_bytes(&self) -> u64 {
        self.tiers.slow_capacity()
    }

    /// Read bandwidth of tier 1 (SSD in the paper's stack), bytes/s.
    pub fn disk_read_bw(&self) -> f64 {
        self.tiers[1].read_bw
    }

    /// Write bandwidth of tier 1 (SSD in the paper's stack), bytes/s.
    pub fn disk_write_bw(&self) -> f64 {
        self.tiers[1].write_bw
    }

    /// Aggregate FP16 throughput across GPUs, FLOP/s.
    pub fn total_flops(&self) -> f64 {
        self.gpu.flops_f16 * self.n_gpus as f64
    }

    /// Aggregate HBM bandwidth across GPUs, bytes/s.
    pub fn total_hbm_bw(&self) -> f64 {
        self.gpu.hbm_bw * self.n_gpus as f64
    }

    /// Aggregate HBM capacity across GPUs, bytes.
    pub fn total_hbm_bytes(&self) -> u64 {
        self.gpu.hbm_bytes * self.n_gpus as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_matches_section_4_1() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.n_gpus, 4);
        assert_eq!(c.dram_bytes(), 128_000_000_000);
        assert_eq!(c.disk_bytes(), 10_000_000_000_000);
        assert!((c.pcie_bw - 26e9).abs() < 1.0);
        // Pins the *preset* only: configured stacks are free to use
        // faster tiers (pooled memory, NVMe-oF, ...).
        assert!(
            c.disk_read_bw() < 5e9,
            "paper preset: testbed disks under 5 GB/s"
        );
    }

    #[test]
    fn builders_override_fields() {
        let c = ClusterSpec::paper_testbed()
            .with_gpus(2)
            .with_dram(1)
            .with_disk(2);
        assert_eq!(c.n_gpus, 2);
        assert_eq!(c.dram_bytes(), 1);
        assert_eq!(c.disk_bytes(), 2);
    }

    #[test]
    fn aggregates_scale_with_gpu_count() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.total_flops(), 4.0 * 312e12);
        assert_eq!(c.total_hbm_bytes(), 320_000_000_000);
    }

    #[test]
    fn four_tier_stack_orders_fastest_first() {
        let stack = TierStack::new(vec![
            TierSpec::dram(64_000_000_000),
            TierSpec::pooled_memory(256_000_000_000),
            TierSpec::ssd(2_000_000_000_000),
            TierSpec::object_store(100_000_000_000_000),
        ]);
        assert_eq!(stack.len(), 4);
        assert_eq!(stack[1].name, "pooled");
        assert_eq!(
            stack.total_capacity(),
            64_000_000_000 + 256_000_000_000 + 2_000_000_000_000 + 100_000_000_000_000
        );
        assert_eq!(
            stack.slow_capacity(),
            stack.total_capacity() - stack[0].capacity
        );
        // Bandwidths decrease and prices decrease going down the stack.
        for pair in stack.0.windows(2) {
            assert!(pair[0].read_bw >= pair[1].read_bw);
            assert!(pair[0].dollars_per_gb >= pair[1].dollars_per_gb);
        }
    }

    #[test]
    fn stack_pricing_sums_tier_rentals() {
        let stack = TierStack::paper_two_tier();
        let expected = 128.0 * 0.0088 + 10_000.0 * 0.000082;
        assert!((stack.dollars_per_hour() - expected).abs() < 1e-9);
    }

    #[test]
    fn tier_specs_round_trip_through_serde() {
        let stack = TierStack::paper_two_tier().push(TierSpec::object_store(5_000_000_000_000));
        let v = stack.to_value();
        let back = TierStack::from_value(&v).expect("round-trips");
        assert_eq!(back, stack);
    }
}
