#!/usr/bin/env bash
# Local CI gate: run everything a PR must keep green.
#
#   ./ci.sh
#
# 1. rustfmt check (no dirty formatting lands)
# 2. release build of the whole workspace (examples + benches included)
# 3. full test suite (unit, integration, golden-report, proptests, doctests)
# 4. clippy with warnings denied
# 5. telemetry smoke: capture a small traced run, validate the outputs
# 6. cluster smoke: 2-instance run with telemetry, validated the same way
# 7. chaos smoke: fixed-seed faulted run (crash + SSD errors), validated
#    the same way
# 8. tiers smoke: a 3-tier (DRAM/pooled/SSD) faulted run through the
#    depth-N stack machinery, validated the same way
# 9. watch smoke: a bursty run through the windowed observability
#    plane; the windowed JSONL is validated by trace_check --windows
#    (contiguous windows, well-paired alert timeline)
# 10. share smoke: a shared-prefix run under content-addressed block
#    keying, validated the same way plus a check that block dedup
#    events appear — and that a per-session run emits none
# 11. slo smoke: a flash-crowd run through the admission ladder and the
#    autoscaler; trace_check validates the overload vocabulary and the
#    gate greps for typed sheds plus at least one scaling action
# 12. rustdoc gate: the whole workspace documents cleanly with
#    warnings denied
# 13. scale smoke: exp_scale runs a small diurnal cluster trace with the
#    host-time self-profiler on, exports the two-clock Chrome trace, and
#    trace_check validates both it and the self-profile's internal
#    consistency (self <= total per scope, scope sum <= wall clock)
# 14. perf-regression gate: exp_profile re-runs the canonical scenario
#    matrix and diffs against the committed BENCH_profile.json with
#    tolerance bands. Intentional perf changes: REGEN_BENCH=1 ./ci.sh
#    regenerates the baseline (mirror of REGEN_GOLDEN=1 for fixtures).
# 15. throughput gate: exp_scale re-runs the pinned bench scenario and
#    diffs BENCH_scale.json — virtual fields (event count, makespan,
#    hit rate) must match exactly; host fields (events/sec, wall, RSS)
#    get a wide band that only catches algorithmic collapses.
#    REGEN_BENCH=1 regenerates this baseline too.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt (check)"
cargo fmt --all -- --check

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> telemetry smoke (exp_trace + trace_check)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/exp_trace --sessions 60 \
    --trace-out "$SMOKE_DIR/trace.jsonl" \
    --trace-out "$SMOKE_DIR/trace.json" \
    --metrics-out "$SMOKE_DIR/metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/trace.jsonl" \
    --chrome "$SMOKE_DIR/trace.json" \
    --metrics "$SMOKE_DIR/metrics.json"

echo "==> cluster smoke (exp_cluster + trace_check)"
./target/release/exp_cluster --sessions 60 --instances 2 \
    --trace-out "$SMOKE_DIR/cluster.jsonl" \
    --trace-out "$SMOKE_DIR/cluster.json" \
    --metrics-out "$SMOKE_DIR/cluster_metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/cluster.jsonl" \
    --chrome "$SMOKE_DIR/cluster.json" \
    --metrics "$SMOKE_DIR/cluster_metrics.json"

echo "==> chaos smoke (exp_chaos + trace_check)"
./target/release/exp_chaos --sessions 60 --intensity 1.0 --seed 20240418 \
    --trace-out "$SMOKE_DIR/chaos.jsonl" \
    --trace-out "$SMOKE_DIR/chaos.json" \
    --metrics-out "$SMOKE_DIR/chaos_metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/chaos.jsonl" \
    --chrome "$SMOKE_DIR/chaos.json" \
    --metrics "$SMOKE_DIR/chaos_metrics.json"
grep -q '"category":"fault"' "$SMOKE_DIR/chaos.jsonl" \
    || { echo "chaos smoke: no fault events in trace" >&2; exit 1; }

echo "==> tiers smoke (exp_tiers 3-tier stack + trace_check)"
./target/release/exp_tiers --sessions 60 --stack pooled \
    --trace-out "$SMOKE_DIR/tiers.jsonl" \
    --trace-out "$SMOKE_DIR/tiers.json" \
    --metrics-out "$SMOKE_DIR/tiers_metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/tiers.jsonl" \
    --chrome "$SMOKE_DIR/tiers.json" \
    --metrics "$SMOKE_DIR/tiers_metrics.json"
grep -q '"kind":"tier_config".*"name":"pooled"' "$SMOKE_DIR/tiers.jsonl" \
    || { echo "tiers smoke: pooled tier missing from trace" >&2; exit 1; }

echo "==> watch smoke (exp_watch windowed plane + trace_check --windows)"
./target/release/exp_watch --sessions 60 \
    --windows-out "$SMOKE_DIR/watch_windows.jsonl" \
    --prom-out "$SMOKE_DIR/watch.prom" \
    --trace-out "$SMOKE_DIR/watch.jsonl" \
    --trace-out "$SMOKE_DIR/watch.json" \
    --metrics-out "$SMOKE_DIR/watch_metrics.json" >/dev/null
./target/release/trace_check \
    --windows "$SMOKE_DIR/watch_windows.jsonl" \
    --jsonl "$SMOKE_DIR/watch.jsonl" \
    --chrome "$SMOKE_DIR/watch.json" \
    --metrics "$SMOKE_DIR/watch_metrics.json"
grep -q '"kind":"window_config"' "$SMOKE_DIR/watch_windows.jsonl" \
    || { echo "watch smoke: window_config header missing" >&2; exit 1; }
grep -q '^cachedattention_turns_arrived_total' "$SMOKE_DIR/watch.prom" \
    || { echo "watch smoke: prometheus exposition missing counters" >&2; exit 1; }

echo "==> share smoke (exp_share content-addressed blocks + trace_check)"
./target/release/exp_share --smoke --scenario system_prompt \
    --keying content_addressed \
    --trace-out "$SMOKE_DIR/share.jsonl" \
    --trace-out "$SMOKE_DIR/share.json" \
    --metrics-out "$SMOKE_DIR/share_metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/share.jsonl" \
    --chrome "$SMOKE_DIR/share.json" \
    --metrics "$SMOKE_DIR/share_metrics.json"
grep -q '"kind":"block_dedup_hit"' "$SMOKE_DIR/share.jsonl" \
    || { echo "share smoke: no block_dedup_hit events in trace" >&2; exit 1; }
./target/release/exp_share --smoke --scenario system_prompt \
    --keying per_session \
    --trace-out "$SMOKE_DIR/share_per.jsonl" \
    --metrics-out "$SMOKE_DIR/share_per_metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/share_per.jsonl" \
    --metrics "$SMOKE_DIR/share_per_metrics.json"
! grep -q '"kind":"block_' "$SMOKE_DIR/share_per.jsonl" \
    || { echo "share smoke: per-session run emitted block events" >&2; exit 1; }

echo "==> slo smoke (exp_slo flash crowd + trace_check)"
./target/release/exp_slo --sessions 240 \
    --windows-out "$SMOKE_DIR/slo_windows.jsonl" \
    --trace-out "$SMOKE_DIR/slo.jsonl" \
    --trace-out "$SMOKE_DIR/slo.json" \
    --metrics-out "$SMOKE_DIR/slo_metrics.json" >/dev/null
./target/release/trace_check \
    --windows "$SMOKE_DIR/slo_windows.jsonl" \
    --jsonl "$SMOKE_DIR/slo.jsonl" \
    --chrome "$SMOKE_DIR/slo.json" \
    --metrics "$SMOKE_DIR/slo_metrics.json"
grep -q '"kind":"turn_shed"' "$SMOKE_DIR/slo.jsonl" \
    || { echo "slo smoke: no turn_shed rejections in trace" >&2; exit 1; }
grep -qE '"kind":"scale_(up|down)"' "$SMOKE_DIR/slo.jsonl" \
    || { echo "slo smoke: autoscaler never acted" >&2; exit 1; }

echo "==> scale smoke (exp_scale two-clock export + trace_check --self-profile)"
./target/release/exp_scale --sessions 150 --instances 2 --rate 1.0 \
    --out "$SMOKE_DIR/scale_smoke.json" \
    --trace-out "$SMOKE_DIR/scale_two_clock.json" >/dev/null
./target/release/trace_check \
    --chrome "$SMOKE_DIR/scale_two_clock.json" \
    --self-profile "$SMOKE_DIR/scale_smoke.json"
grep -q '"simulator host time (self-profile)"' "$SMOKE_DIR/scale_two_clock.json" \
    || { echo "scale smoke: self-profile track missing from two-clock trace" >&2; exit 1; }

echo "==> cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "==> perf-regression gate (exp_profile vs BENCH_profile.json)"
if [[ "${REGEN_BENCH:-0}" == "1" ]]; then
    ./target/release/exp_profile --out BENCH_profile.json >/dev/null
    echo "regenerated BENCH_profile.json — review and commit the diff"
else
    ./target/release/exp_profile --out "$SMOKE_DIR/profile.json" \
        --baseline BENCH_profile.json >/dev/null
fi

echo "==> throughput gate (exp_scale vs BENCH_scale.json)"
if [[ "${REGEN_BENCH:-0}" == "1" ]]; then
    ./target/release/exp_scale --out BENCH_scale.json >/dev/null
    echo "regenerated BENCH_scale.json — review and commit the diff"
else
    ./target/release/exp_scale --out "$SMOKE_DIR/scale.json" \
        --baseline BENCH_scale.json >/dev/null
fi

echo "CI green."
