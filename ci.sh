#!/usr/bin/env bash
# Local CI gate: run everything a PR must keep green.
#
#   ./ci.sh
#
# 1. release build of the whole workspace (examples + benches included)
# 2. full test suite (unit, integration, golden-report, proptests, doctests)
# 3. clippy with warnings denied
# 4. telemetry smoke: capture a small traced run, validate the outputs
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> telemetry smoke (exp_trace + trace_check)"
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
./target/release/exp_trace --sessions 60 \
    --trace-out "$SMOKE_DIR/trace.jsonl" \
    --trace-out "$SMOKE_DIR/trace.json" \
    --metrics-out "$SMOKE_DIR/metrics.json" >/dev/null
./target/release/trace_check \
    --jsonl "$SMOKE_DIR/trace.jsonl" \
    --chrome "$SMOKE_DIR/trace.json" \
    --metrics "$SMOKE_DIR/metrics.json"

echo "CI green."
