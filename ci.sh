#!/usr/bin/env bash
# Local CI gate: run everything a PR must keep green.
#
#   ./ci.sh
#
# 1. release build of the whole workspace (examples + benches included)
# 2. full test suite (unit, integration, golden-report, proptests, doctests)
# 3. clippy with warnings denied
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "CI green."
