#![warn(missing_docs)]

//! CachedAttention: KV cache reuse across multi-turn LLM conversations.
//!
//! This is the facade crate of the reproduction of *"Cost-Efficient Large
//! Language Model Serving for Multi-turn Conversations with
//! CachedAttention"* (USENIX ATC 2024). It re-exports the public API of the
//! workspace crates:
//!
//! - [`sim`]: deterministic discrete-event simulation kernel.
//! - [`models`]: model/hardware specs and the calibrated cost model.
//! - [`workload`]: ShareGPT-calibrated multi-turn conversation workloads.
//! - [`store`]: AttentionStore, the hierarchical DRAM/SSD KV caching
//!   system with scheduler-aware fetching and eviction.
//! - [`engine`]: the serving engine with CachedAttention and the
//!   recomputation baseline, layer-wise pre-loading and async saving.
//! - [`metrics`]: statistics and AWS cost accounting.
//! - [`telemetry`]: merged engine/store event traces, the live
//!   `MetricsHub`, and JSONL/Chrome-trace (Perfetto) exporters.
//! - [`tinyllm`]: a real CPU transformer demonstrating decoupled
//!   positional-encoding KV truncation.
//! - [`nanograd`]: reverse-mode autodiff used to train `tinyllm`.
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index.

pub use engine;
pub use metrics;
pub use models;
pub use nanograd;
pub use sim;
pub use store;
pub use telemetry;
pub use tinyllm;
pub use workload;

/// Crate version, from the workspace manifest.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
