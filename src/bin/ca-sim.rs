//! `ca-sim`: the CachedAttention serving simulator CLI.
//!
//! ```console
//! $ ca-sim models
//! $ ca-sim trace --sessions 500 --rate 1.0 --out trace.json
//! $ ca-sim run --sessions 500 --model llama-13b --mode ca
//! $ ca-sim run --trace trace.json --model llama-70b --mode re
//! $ ca-sim compare --sessions 500 --model falcon-40b
//! ```

use cachedattention::engine::{run_trace, EngineConfig, Mode, RunReport};
use cachedattention::metrics::table::{pct, secs, Table};
use cachedattention::models::ModelSpec;
use cachedattention::store::PolicyKind;
use cachedattention::workload::{Generator, ShareGptProfile, Trace};
use std::process::ExitCode;

/// Minimal flag parser: `--name value` pairs after the subcommand.
struct Args {
    raw: Vec<String>,
}

impl Args {
    fn get(&self, name: &str) -> Option<&str> {
        self.raw
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.raw.get(i + 1))
            .map(String::as_str)
    }

    fn get_parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value for {name}: {v}")),
        }
    }
}

fn model_by_name(name: &str) -> Result<ModelSpec, String> {
    match name.to_lowercase().as_str() {
        "llama-13b" | "llama2-13b" => Ok(ModelSpec::llama2_13b()),
        "llama-65b" | "llama1-65b" => Ok(ModelSpec::llama1_65b()),
        "llama-70b" | "llama2-70b" => Ok(ModelSpec::llama2_70b()),
        "falcon-40b" => Ok(ModelSpec::falcon_40b()),
        "mistral-7b" => Ok(ModelSpec::mistral_7b()),
        "llama-7b" | "llama1-7b" => Ok(ModelSpec::llama1_7b()),
        "opt-13b" => Ok(ModelSpec::opt_13b()),
        other => Err(format!("unknown model '{other}'; see `ca-sim models`")),
    }
}

fn mode_by_name(name: &str) -> Result<Mode, String> {
    match name.to_lowercase().as_str() {
        "ca" => Ok(Mode::CachedAttention),
        "re" => Ok(Mode::Recompute),
        "of" => Ok(Mode::CoupledOverflow),
        other => Err(format!("unknown mode '{other}' (ca | re | of)")),
    }
}

fn policy_by_name(name: &str) -> Result<PolicyKind, String> {
    match name.to_lowercase().as_str() {
        "sa" | "scheduler-aware" => Ok(PolicyKind::SchedulerAware),
        "lru" => Ok(PolicyKind::Lru),
        "fifo" => Ok(PolicyKind::Fifo),
        other => Err(format!("unknown policy '{other}' (sa | lru | fifo)")),
    }
}

fn load_or_generate_trace(args: &Args) -> Result<Trace, String> {
    if let Some(path) = args.get("--trace") {
        let json = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
        return Trace::from_json(&json).map_err(|e| format!("parse {path}: {e}"));
    }
    let sessions: usize = args.get_parse("--sessions", 300)?;
    let rate: f64 = args.get_parse("--rate", 1.0)?;
    let seed: u64 = args.get_parse("--seed", 42)?;
    let profile = ShareGptProfile::default().with_arrival_rate(rate);
    Ok(Generator::new(profile, seed).trace(sessions))
}

fn build_config(args: &Args, mode: Mode, model: ModelSpec) -> Result<EngineConfig, String> {
    let mut cfg = EngineConfig::paper(mode, model);
    if let Some(p) = args.get("--policy") {
        cfg.store.policy = policy_by_name(p)?;
    }
    let dram_gb: f64 = args.get_parse("--dram-gb", cfg.store.dram_bytes() as f64 / 1e9)?;
    let disk_tb: f64 = args.get_parse("--disk-tb", cfg.store.disk_bytes() as f64 / 1e12)?;
    cfg.store.set_dram_bytes((dram_gb * 1e9) as u64);
    cfg.store.set_disk_bytes((disk_tb * 1e12) as u64);
    let compression: f64 = args.get_parse("--compression", 1.0)?;
    if compression <= 0.0 || compression > 1.0 {
        return Err(format!(
            "--compression must be in (0, 1], got {compression}"
        ));
    }
    cfg.kv_compression = compression;
    cfg.warmup_turns = args.get_parse("--warmup-turns", 0usize)?;
    Ok(cfg)
}

fn report_rows(r: &RunReport) -> Vec<(String, String)> {
    vec![
        ("sessions done".into(), r.sessions_done.get().to_string()),
        ("turns measured".into(), r.turns_measured.get().to_string()),
        ("hit rate".into(), pct(r.hit_rate())),
        ("DRAM hit share".into(), pct(r.fast_hit_rate())),
        ("mean TTFT".into(), secs(r.ttft_mean())),
        ("mean queue wait".into(), secs(r.queue_wait.mean())),
        (
            "prefill throughput".into(),
            format!("{:.0} tok/s", r.prefill_throughput()),
        ),
        ("GPU busy hours".into(), format!("{:.3}", r.busy_hours())),
        ("makespan hours".into(), format!("{:.3}", r.gpu_hours())),
        ("tokens recomputed".into(), pct(r.recompute_fraction())),
        ("truncations".into(), r.truncations.get().to_string()),
    ]
}

fn cmd_models() -> ExitCode {
    let mut t = Table::new(
        "model presets",
        &["name", "params", "layers", "kv MB/token", "context"],
    );
    for m in [
        ModelSpec::llama1_7b(),
        ModelSpec::llama2_13b(),
        ModelSpec::opt_13b(),
        ModelSpec::falcon_40b(),
        ModelSpec::llama1_65b(),
        ModelSpec::llama2_70b(),
        ModelSpec::mistral_7b(),
    ] {
        t.row(&[
            m.name.to_lowercase(),
            format!("{}B", m.n_params / 1_000_000_000),
            m.n_layers.to_string(),
            format!("{:.2}", m.kv_bytes_per_token() as f64 / 1e6),
            m.context_window.to_string(),
        ]);
    }
    println!("{}", t.render());
    ExitCode::SUCCESS
}

fn cmd_trace(args: &Args) -> Result<(), String> {
    let trace = load_or_generate_trace(args)?;
    let out = args.get("--out").unwrap_or("trace.json");
    std::fs::write(out, trace.to_json()).map_err(|e| format!("write {out}: {e}"))?;
    println!(
        "wrote {} sessions / {} turns to {out}",
        trace.sessions.len(),
        trace.total_turns()
    );
    Ok(())
}

fn cmd_run(args: &Args) -> Result<(), String> {
    let model = model_by_name(args.get("--model").unwrap_or("llama-13b"))?;
    let mode = mode_by_name(args.get("--mode").unwrap_or("ca"))?;
    let trace = load_or_generate_trace(args)?;
    let cfg = build_config(args, mode, model)?;
    let r = run_trace(cfg, trace);
    let mut t = Table::new(format!("{} / {}", r.model, r.mode), &["metric", "value"]);
    for (k, v) in report_rows(&r) {
        t.row(&[k, v]);
    }
    println!("{}", t.render());
    println!(
        "GPU utilization over time ({}s buckets):\n{}",
        r.gpu_busy_timeline.bucket_secs(),
        r.gpu_busy_timeline.sparkline(72)
    );
    Ok(())
}

fn cmd_compare(args: &Args) -> Result<(), String> {
    let model = model_by_name(args.get("--model").unwrap_or("llama-13b"))?;
    let trace = load_or_generate_trace(args)?;
    let ca = run_trace(
        build_config(args, Mode::CachedAttention, model.clone())?,
        trace.clone(),
    );
    let re = run_trace(build_config(args, Mode::Recompute, model.clone())?, trace);
    let mut t = Table::new(
        format!("{}: CachedAttention vs recomputation", model.name),
        &["metric", "CA", "RE"],
    );
    for ((k, a), (_, b)) in report_rows(&ca).into_iter().zip(report_rows(&re)) {
        t.row(&[k, a, b]);
    }
    println!("{}", t.render());
    Ok(())
}

const USAGE: &str = "\
ca-sim: CachedAttention serving simulator

USAGE:
  ca-sim models
  ca-sim trace   [--sessions N] [--rate R] [--seed S] [--out FILE]
  ca-sim run     [--trace FILE | --sessions N] [--model NAME] [--mode ca|re|of]
                 [--policy sa|lru|fifo] [--dram-gb G] [--disk-tb T]
                 [--compression R] [--warmup-turns N]
  ca-sim compare [--trace FILE | --sessions N] [--model NAME] [run options]
";

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = raw.first().cloned() else {
        eprint!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let args = Args {
        raw: raw[1..].to_vec(),
    };
    let result = match cmd.as_str() {
        "models" => return cmd_models(),
        "trace" => cmd_trace(&args),
        "run" => cmd_run(&args),
        "compare" => cmd_compare(&args),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command '{other}'\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
