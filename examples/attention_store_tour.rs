//! A tour of AttentionStore used directly: saves, tiered placement,
//! scheduler-aware prefetching and eviction, TTL expiry.
//!
//! Run: `cargo run --release --example attention_store_tour`

use cachedattention::models::TierStack;
use cachedattention::sim::{Dur, Time};
use cachedattention::store::{
    AttentionStore, Lookup, PolicyKind, QueueView, SessionId, StoreConfig, TierId,
};

const GB: u64 = 1_000_000_000;

fn show(store: &AttentionStore, label: &str) {
    println!(
        "{label:<38} dram {:>5.1} GB  disk {:>6.1} GB  sessions {}",
        store.dram_used_bytes() as f64 / GB as f64,
        store.disk_used_bytes() as f64 / GB as f64,
        store.len()
    );
}

fn main() {
    // A small two-tier store: 8 GB DRAM over 40 GB SSD.
    let mut store = AttentionStore::new(StoreConfig {
        tiers: TierStack::two_tier(8 * GB, 40 * GB),
        block_bytes: 64 * 1024 * 1024,
        policy: PolicyKind::SchedulerAware,
        ttl: Some(Dur::from_secs_f64(3600.0)),
        dram_reserve_fraction: 0.1,
        default_session_bytes: 2 * GB,
        ..StoreConfig::default()
    });
    let empty = QueueView::empty();

    // Saving sessions fills DRAM first, then demotes the coldest to SSD.
    for i in 0..10u64 {
        let (transfers, ok) = store.save(
            SessionId(i),
            2 * GB,
            2_500,
            Time::from_secs_f64(i as f64),
            &empty,
        );
        assert!(ok);
        for t in &transfers {
            println!(
                "  save {} demoted {} ({} GB) to disk",
                i,
                t.session,
                t.bytes / GB
            );
        }
    }
    show(&store, "after 10 saves of 2 GB:");

    // Sessions 0..6 went to disk; the scheduler's queue says sessions 1
    // and 2 run next, so the prefetcher pulls them up.
    assert_eq!(store.lookup(SessionId(1)), Lookup::Hit(TierId(1)));
    let queue = QueueView::new(&[SessionId(1), SessionId(2)]);
    let fetched = store.prefetch(Time::from_secs_f64(20.0), &queue);
    let promoted: Vec<u64> = fetched
        .iter()
        .filter(|t| t.is_promotion())
        .map(|t| t.session.0)
        .collect();
    println!("prefetched from disk: {promoted:?}");
    assert_eq!(store.lookup(SessionId(1)), Lookup::Hit(TierId(0)));

    // Demand access pins the entry; saving the grown KV replaces it.
    let (found, _) = store.load_for_use(SessionId(1), Time::from_secs_f64(21.0), &queue);
    assert_eq!(found, Lookup::Hit(TierId(0)));
    store.save(
        SessionId(1),
        2 * GB + GB / 2,
        3_100,
        Time::from_secs_f64(25.0),
        &queue,
    );
    show(&store, "after session 1 grew by 0.5 GB:");

    // Decoupled-PE truncation shrinks an entry in place.
    store.truncate(SessionId(1), GB, 1_250);
    println!(
        "truncated session 1 to {} GB / {} tokens",
        store.entry(SessionId(1)).unwrap().bytes / GB,
        store.entry(SessionId(1)).unwrap().tokens
    );

    // TTL expiry drops sessions idle for over an hour.
    let expired = store.expire(Time::from_secs_f64(3700.0));
    show(&store, &format!("after TTL sweep ({expired} expired):"));
    println!("\nstats: {:?}", store.stats());
}
