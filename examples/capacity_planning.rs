//! Capacity planning with the §4.3.6 model: how much AttentionStore do
//! you need for a given traffic level and hit-rate target?
//!
//! `CCpUT = DSpUT × CCpS` is the capacity that would hold every distinct
//! session served per TTL window at its maximum size; the paper (and this
//! simulation) shows a quarter of that already saturates the hit rate.
//!
//! Run: `cargo run --release --example capacity_planning`

use cachedattention::engine::{run_trace, EngineConfig, Mode};
use cachedattention::metrics::aws::PriceSheet;
use cachedattention::models::ModelSpec;
use cachedattention::sim::Dur;
use cachedattention::workload::{Generator, ShareGptProfile};

fn main() {
    let model = ModelSpec::llama2_13b();
    let rate: f64 = 0.5; // sessions per second
    let ttl_secs = 3600.0;
    let sessions = 600usize;
    let ccps = model.kv_bytes(model.context_window as u64);
    let dsput = (rate * ttl_secs).min(sessions as f64);
    let ccput = (dsput * ccps as f64) as u64;
    println!(
        "traffic: {rate}/s sessions, TTL 1h -> DSpUT {dsput:.0} sessions, CCpS {:.2} GB, CCpUT {:.1} TB",
        ccps as f64 / 1e9,
        ccput as f64 / 1e12
    );
    println!("\nprovisioning sweep (LLaMA-13B):");
    println!(
        "{:<12}{:<12}{:<12}{:<12}storage $/h",
        "RCC/CCpUT", "capacity", "hit rate", "TTFT"
    );
    let prices = PriceSheet::default();
    let trace =
        Generator::new(ShareGptProfile::default().with_arrival_rate(rate), 11).trace(sessions);
    for ratio in [0.05, 0.1, 0.25, 0.5] {
        let total = (ccput as f64 * ratio) as u64;
        let dram = total.min(5 * ccps);
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, model.clone());
        cfg.store.ttl = Some(Dur::from_secs_f64(ttl_secs));
        cfg.store.set_dram_bytes(dram.max(1_000_000_000));
        cfg.store.set_disk_bytes(total.saturating_sub(dram));
        let r = run_trace(cfg, trace.clone());
        let storage_per_hour = prices.dram_per_gb_hour * dram as f64 / 1e9
            + prices.ssd_per_gb_hour * total.saturating_sub(dram) as f64 / 1e9;
        println!(
            "{:<12.2}{:<12}{:<12}{:<12}${:.3}",
            ratio,
            format!("{:.2}TB", total as f64 / 1e12),
            format!("{:.1}%", r.hit_rate() * 100.0),
            format!("{:.3}s", r.ttft_mean()),
            storage_per_hour,
        );
    }
    println!("\nthe hit rate saturates well below full provisioning: cached sessions");
    println!("are not uniformly hot, so capacity buys diminishing coverage (§4.3.6).");
}
