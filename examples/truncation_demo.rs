//! Decoupled positional-encoding KV truncation on a real transformer.
//!
//! Trains a tiny RoPE language model from scratch (pure Rust autodiff),
//! overflows its context window, truncates with each scheme from the
//! paper's §3.4, and prints the perplexities — Table 1 in miniature.
//!
//! Run: `cargo run --release --example truncation_demo`

use cachedattention::tinyllm::corpus::MarkovLang;
use cachedattention::tinyllm::train::Trainer;
use cachedattention::tinyllm::{PeMode, TinyConfig};

fn main() {
    let lang = MarkovLang::order2(16, 1);
    println!(
        "synthetic language entropy rate: {:.2} nats (optimal PPL {:.2})",
        lang.entropy_rate(),
        lang.entropy_rate().exp()
    );
    let corpus = lang.sample(30_000, 2);
    let cfg = TinyConfig {
        vocab: 16,
        dim: 32,
        n_layers: 2,
        n_heads: 4,
        n_kv_heads: 4,
        head_dim: 8,
        ffn_dim: 96,
        rope_theta: 10_000.0,
        eps: 1e-5,
    };
    println!("training a 2-layer RoPE transformer from scratch...");
    let mut trainer = Trainer::new(cfg, 5, 3e-3);
    let losses = trainer.train(&corpus, 64, 1_500, 7);
    println!(
        "loss: {:.2} -> {:.2} nats",
        losses[..50].iter().sum::<f32>() / 50.0,
        losses[losses.len() - 50..].iter().sum::<f32>() / 50.0
    );
    let m = trainer.into_model();

    // Overflow a 48-token context, truncate the oldest half, evaluate.
    let prompt = lang.sample(48, 99);
    let tail = lang.sample(36, 100);
    let keep_from = 24;

    // TT: token truncation + full recompute (the costly reference).
    let mut tt = m.cache(PeMode::Decoupled);
    m.forward(&prompt[keep_from..], &mut tt);
    let tt_ppl = m.perplexity(&tail, &mut tt);

    // CA: the saved KV has no positions baked in; truncate it directly
    // and re-embed fresh positions at use time. No recompute needed.
    let mut ca = m.cache(PeMode::Decoupled);
    m.forward(&prompt, &mut ca);
    ca.truncate_front(keep_from);
    let ca_ppl = m.perplexity(&tail, &mut ca);

    // NKVT: positions were baked into the cached keys; truncation
    // scrambles them.
    let mut nk = m.cache(PeMode::Coupled);
    m.forward(&prompt, &mut nk);
    nk.truncate_front(keep_from);
    let nk_ppl = m.perplexity(&tail, &mut nk);

    println!("\nperplexity after context-window overflow and truncation:");
    println!("  TT   (recompute)           {tt_ppl:.3}");
    println!("  CA   (decoupled KV trunc)  {ca_ppl:.3}   <- tracks TT, zero recompute");
    println!("  NKVT (naive KV trunc)      {nk_ppl:.3}   <- scrambled positions");
    assert!((ca_ppl - tt_ppl).abs() / tt_ppl < 0.1);
    assert!(nk_ppl > tt_ppl);
}
