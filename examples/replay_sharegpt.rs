//! Replay a real ShareGPT-format JSON dump through the serving simulator.
//!
//! Run: `cargo run --release --example replay_sharegpt [path/to/sharegpt.json]`
//!
//! Without a path it replays a small built-in sample so the example is
//! runnable offline; with the real `sharegpt_90k` dump it reproduces the
//! paper's workload exactly.

use cachedattention::engine::{run_paper_workload, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::workload::sharegpt::load_sharegpt_json;

const SAMPLE: &str = r#"[
  {"id": "demo-1", "conversations": [
    {"from": "human", "value": "Write a haiku about key-value caches and the autumn moon."},
    {"from": "gpt", "value": "Old keys linger on / the host memory grows cold / values drift to disk"},
    {"from": "human", "value": "Now explain what a KV cache actually is, in two sentences."},
    {"from": "gpt", "value": "A KV cache stores the attention keys and values of every token an LLM has processed so they are not recomputed when generating later tokens. It grows linearly with context length and dominates GPU memory during long conversations."},
    {"from": "human", "value": "And why would I want to keep it between turns of a chat?"},
    {"from": "gpt", "value": "Because the next turn repeats the whole conversation as context; reusing the cached keys and values avoids re-prefilling thousands of historical tokens, cutting the time to first token and the GPU bill."}
  ]},
  {"id": "demo-2", "conversations": [
    {"from": "human", "value": "Summarize the plot of Hamlet in one tweet."},
    {"from": "gpt", "value": "Danish prince learns his uncle killed his father, fakes madness, stages a play to confirm it, and in the ensuing duel nearly everyone dies, including him. #tragedy"}
  ]}
]"#;

fn main() {
    let json = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("could not read {path}: {e}; using built-in sample");
            SAMPLE.to_string()
        }),
        None => SAMPLE.to_string(),
    };
    let trace = load_sharegpt_json(&json, 1.0, 15.0, 42).expect("parse ShareGPT JSON");
    println!(
        "loaded {} sessions / {} turns ({} total tokens)",
        trace.sessions.len(),
        trace.total_turns(),
        trace.sessions.iter().map(|s| s.total_tokens()).sum::<u64>()
    );
    let ca = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::mistral_7b(),
        trace.clone(),
        0,
    );
    let re = run_paper_workload(Mode::Recompute, ModelSpec::mistral_7b(), trace, 0);
    println!(
        "Mistral-7B replay: CA TTFT {:.3}s vs RE {:.3}s; CA recomputed {:.0}% of prompt tokens vs RE {:.0}%",
        ca.ttft_mean(),
        re.ttft_mean(),
        ca.recompute_fraction() * 100.0,
        re.recompute_fraction() * 100.0,
    );
}
