//! A customer-support chatbot scenario: long, slow-paced sessions on a
//! tight storage budget, demonstrating engine configuration, eviction
//! policies and the cost report.
//!
//! Run: `cargo run --release --example chatbot_serving`

use cachedattention::engine::{run_trace, EngineConfig, Mode};
use cachedattention::metrics::aws::PriceSheet;
use cachedattention::models::ModelSpec;
use cachedattention::store::PolicyKind;
use cachedattention::workload::{Generator, ShareGptProfile};

fn main() {
    // Support conversations: many turns, short messages, minutes of
    // thinking between them.
    let profile = ShareGptProfile {
        p_single_turn: 0.05,
        turn_geo_p: 1.0 / 10.0,
        user_mu: 3.8,
        user_sigma: 0.9,
        resp_mu: 4.6,
        resp_sigma: 0.7,
        mean_think_secs: 120.0,
        arrival_rate: 0.5,
        ..ShareGptProfile::default()
    };
    let trace = Generator::new(profile, 7).trace(250);
    println!(
        "support workload: {} sessions / {} turns",
        trace.sessions.len(),
        trace.total_turns()
    );

    // A smaller node: LLaMA-2-13B with only 32 GB of cache DRAM and a
    // 1 TB SSD; compare the three eviction policies on it.
    for policy in [
        PolicyKind::SchedulerAware,
        PolicyKind::Lru,
        PolicyKind::Fifo,
    ] {
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.store.policy = policy;
        cfg.store.set_dram_bytes(32_000_000_000);
        cfg.store.set_disk_bytes(1_000_000_000_000);
        let r = run_trace(cfg, trace.clone());
        let cost = r.cost(&PriceSheet::default(), 2, 32.0, 1_000.0);
        println!(
            "{:>16?}: hit {:>5.1}% (DRAM {:>5.1}%)  TTFT {:.3}s  cost ${:.2}",
            policy,
            r.hit_rate() * 100.0,
            r.fast_hit_rate() * 100.0,
            r.ttft_mean(),
            cost.total(),
        );
    }
    println!("\nscheduler-aware placement keeps hits in DRAM even on a small cache.");
}
