//! Quickstart: serve a multi-turn workload with CachedAttention and with
//! the recomputation baseline, and compare the headline metrics.
//!
//! Run: `cargo run --release --example quickstart`

use cachedattention::engine::{run_paper_workload, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::workload::{Generator, ShareGptProfile};

fn main() {
    // 1. Generate a ShareGPT-like workload: 300 sessions arriving at
    //    1 session/s, multi-turn, calibrated to the paper's statistics.
    let trace = Generator::new(ShareGptProfile::default(), 42).trace(300);
    println!(
        "workload: {} sessions, {} turns",
        trace.sessions.len(),
        trace.total_turns()
    );

    // 2. Serve it twice on a simulated 2xA100 node with LLaMA-13B: once
    //    with CachedAttention (KV caches saved to DRAM/SSD and reused),
    //    once with the recomputation baseline.
    let model = ModelSpec::llama2_13b();
    let ca = run_paper_workload(Mode::CachedAttention, model.clone(), trace.clone(), 0);
    let re = run_paper_workload(Mode::Recompute, model, trace, 0);

    // 3. Compare.
    println!("\n                      CachedAttention    Recompute");
    println!(
        "hit rate              {:>14.1}%    {:>9.1}%",
        ca.hit_rate() * 100.0,
        re.hit_rate() * 100.0
    );
    println!(
        "mean TTFT             {:>14.3}s    {:>9.3}s",
        ca.ttft_mean(),
        re.ttft_mean()
    );
    println!(
        "prefill throughput    {:>11.0} t/s    {:>6.0} t/s",
        ca.prefill_throughput(),
        re.prefill_throughput()
    );
    println!(
        "GPU busy time         {:>13.2}h     {:>8.2}h",
        ca.busy_hours(),
        re.busy_hours()
    );
    println!(
        "prompt tokens recomputed: CA {:.1}% vs RE {:.1}%",
        ca.recompute_fraction() * 100.0,
        re.recompute_fraction() * 100.0
    );
    assert!(ca.ttft_mean() < re.ttft_mean());
    println!("\nCachedAttention reused the KV cache instead of recomputing it.");
}
