//! Offline stand-in for the `rand_distr` crate (see `compat/README.md`).
//!
//! Provides the three distributions the simulator draws from: [`Exp`],
//! [`LogNormal`] and [`Zipf`].

#![warn(missing_docs)]

use rand::{Distribution, Rng, RngCore};

/// Error returned by invalid distribution parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParamError(&'static str);

impl std::fmt::Display for ParamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution parameter: {}", self.0)
    }
}

impl std::error::Error for ParamError {}

fn unit_open01<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    // Uniform in (0, 1]: avoids ln(0).
    1.0 - rng.gen::<f64>()
}

/// The exponential distribution with rate `lambda`.
#[derive(Debug, Clone, Copy)]
pub struct Exp {
    lambda: f64,
}

impl Exp {
    /// Creates the distribution; `lambda` must be positive and finite.
    pub fn new(lambda: f64) -> Result<Exp, ParamError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(ParamError("exp rate must be positive and finite"));
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        -unit_open01(rng).ln() / self.lambda
    }
}

/// The log-normal distribution: `exp(mu + sigma · N(0, 1))`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; parameters must be finite and `sigma`
    /// non-negative.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, ParamError> {
        if !(mu.is_finite() && sigma.is_finite() && sigma >= 0.0) {
            return Err(ParamError("lognormal parameters must be finite"));
        }
        Ok(LogNormal { mu, sigma })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // Box-Muller; the second variate is discarded (the distribution
        // object is stateless).
        let u1 = unit_open01(rng);
        let u2 = rng.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (self.mu + self.sigma * z).exp()
    }
}

/// The Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative unnormalized weights; `cdf[k-1]` covers ranks `1..=k`.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates the distribution; `n` must be positive and `s` finite and
    /// non-negative.
    pub fn new(n: u64, s: f64) -> Result<Zipf, ParamError> {
        if n == 0 || !(s.is_finite() && s >= 0.0) {
            return Err(ParamError("zipf needs n > 0 and finite s >= 0"));
        }
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        Ok(Zipf { cdf })
    }
}

impl Distribution<f64> for Zipf {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let total = *self.cdf.last().expect("n > 0 checked in new");
        let x = rng.gen::<f64>() * total;
        let idx = self.cdf.partition_point(|&c| c <= x);
        (idx.min(self.cdf.len() - 1) + 1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = Exp::new(2.0).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = StdRng::seed_from_u64(6);
        let d = LogNormal::new(1.0, 0.5).unwrap();
        let mut xs: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        xs.sort_by(f64::total_cmp);
        let median = xs[10_000];
        assert!((median - 1f64.exp()).abs() < 0.1, "median {median}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut rng = StdRng::seed_from_u64(7);
        let d = Zipf::new(100, 1.5).unwrap();
        let mut first = 0u32;
        for _ in 0..10_000 {
            let r = d.sample(&mut rng);
            assert!((1.0..=100.0).contains(&r));
            if r == 1.0 {
                first += 1;
            }
        }
        // With s = 1.5, rank 1 carries ~38% of the mass.
        assert!(first > 3_000, "rank-1 draws {first}");
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Exp::new(0.0).is_err());
        assert!(LogNormal::new(f64::NAN, 1.0).is_err());
        assert!(Zipf::new(0, 1.0).is_err());
    }
}
