//! Distributions and uniform range sampling.

use crate::RngCore;

/// A distribution over values of `T`.
pub trait Distribution<T> {
    /// Draws one value using `rng`.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The standard distribution: uniform unit floats, uniform full-range
/// integers, fair booleans.
#[derive(Debug, Clone, Copy, Default)]
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

pub mod uniform {
    //! Uniform sampling from range expressions.

    use crate::RngCore;

    /// A range that can produce one uniform sample.
    pub trait SampleRange<T> {
        /// Draws one value from the range.
        ///
        /// # Panics
        ///
        /// Panics if the range is empty.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    }

    macro_rules! int_range {
        ($($t:ty),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range");
                    let span = (hi as i128 - lo as i128 + 1) as u128;
                    let v = (rng.next_u64() as u128) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }

    int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range {
        ($($t:ty => $gen:ident),*) => {$(
            impl SampleRange<$t> for core::ops::Range<$t> {
                fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                    assert!(self.start < self.end, "empty range");
                    let u: $t = crate::distributions::Distribution::sample(
                        &crate::distributions::Standard,
                        rng,
                    );
                    self.start + u * (self.end - self.start)
                }
            }
        )*};
    }

    float_range!(f32 => next_u32, f64 => next_u64);
}
