//! Offline stand-in for the `rand` crate (see `compat/README.md`).
//!
//! Implements the subset of the `rand 0.8` API this workspace uses:
//! [`rngs::StdRng`] (xoshiro256++ seeded via SplitMix64 — deterministic,
//! but a *different* stream than upstream's ChaCha12-based `StdRng`),
//! the [`RngCore`]/[`SeedableRng`]/[`Rng`] traits, the [`Standard`]
//! uniform distribution and `gen_range` over integer and float ranges.

#![warn(missing_docs)]

pub mod distributions;
pub mod rngs;

pub use distributions::{Distribution, Standard};

/// A source of raw random words.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// A generator that can be constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: distributions::uniform::SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn unit_floats_stay_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }
}
