//! Offline stand-in for `proptest` (see `compat/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`strategy::Strategy`] with
//! `prop_map`, ranges / tuples / `Just` / [`prop_oneof!`] / collections /
//! options / booleans as strategies, and the `prop_assert*` family.
//!
//! Intentional deviations from real proptest (documented in
//! `compat/README.md`): inputs are drawn from a fixed-seed deterministic
//! RNG rather than an entropy-seeded one, failing cases are **not
//! shrunk**, and `*.proptest-regressions` files are not replayed — the
//! seeds recorded there are instead covered by explicit unit tests.

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Object-safe (apart from `prop_map`) so heterogeneous strategies
    /// can be unified behind `Box<dyn Strategy<Value = T>>` in
    /// [`Union`] / [`prop_oneof!`](crate::prop_oneof).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// Uniform choice between boxed strategies; built by
    /// [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Creates a union; `options` must be non-empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn new_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].new_value(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! range_inclusive_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_inclusive_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.new_value(rng), self.1.new_value(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);
        fn new_value(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.new_value(rng),
                self.1.new_value(rng),
                self.2.new_value(rng),
            )
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy for `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    /// Generates vectors of values from `elem` with a length in `size`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.clone());
            (0..n).map(|_| self.elem.new_value(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A strategy for `Option<T>`; `None` about a quarter of the time.
    pub struct OptionStrategy<S>(S);

    /// Wraps `inner`'s values in `Some`, mixing in occasional `None`s.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(self.0.new_value(rng))
            }
        }
    }
}

pub mod bool {
    //! Boolean strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A fair-coin boolean strategy.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Generates booleans with equal probability.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.gen()
        }
    }
}

pub mod test_runner {
    //! The (minimal) test harness: configuration, RNG and case errors.

    use rand::{RngCore, SeedableRng};

    /// Per-block configuration; only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated inputs per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` inputs per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// The RNG handed to strategies: deterministic, fixed seed, so test
    /// runs are reproducible without a persistence file.
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Creates the fixed-seed RNG used by [`proptest!`](crate::proptest).
        pub fn deterministic() -> Self {
            // The bytes of "proptest".
            TestRng(rand::rngs::StdRng::seed_from_u64(0x70726f7074657374))
        }
    }

    impl RngCore for TestRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the input out; not a failure.
        Reject(String),
        /// A `prop_assert*!` failed.
        Fail(String),
    }
}

pub mod prelude {
    //! One-stop imports for property tests, mirroring
    //! `proptest::prelude`.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property-test functions whose arguments are drawn from
/// strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns!(@cfg $cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns!(
            @cfg $crate::test_runner::ProptestConfig::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg $cfg:expr;) => {};
    (@cfg $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($parm:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic();
            for case in 0..config.cases {
                $(let $parm = $crate::strategy::Strategy::new_value(&($strategy), &mut rng);)+
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(msg),
                    ) => {
                        panic!("property failed on case {case}: {msg}");
                    }
                }
            }
        }
        $crate::__proptest_fns!(@cfg $cfg; $($rest)*);
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u64..10,
            y in 5u32..=5,
            f in 0.25f64..0.75,
            opt in crate::option::of(1usize..4),
            v in crate::collection::vec(0u8..2, 2..5),
            b in crate::bool::ANY,
            m in prop_oneof![Just(1u8), (0u8..3, 0u8..3).prop_map(|(a, b)| a + b)],
        ) {
            prop_assert!((3..10).contains(&x));
            prop_assert_eq!(y, 5);
            prop_assert!((0.25..0.75).contains(&f));
            if let Some(o) = opt {
                prop_assert!((1..4).contains(&o));
            }
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| e < 2));
            let _ = b;
            prop_assert!(m <= 4);
            prop_assert_ne!(m, 200);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..4) {
            prop_assume!(x != 1);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failures_panic() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
