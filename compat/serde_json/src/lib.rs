//! Offline stand-in for `serde_json` (see `compat/README.md`).
//!
//! Serializes via the stand-in `serde::Value` tree. Floats are printed
//! with Rust's shortest round-trip representation (`{:?}`), so two runs
//! that produce bit-identical `f64`s produce byte-identical JSON — the
//! property the golden-report regression tests rely on.

#![warn(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses
                // back to the same bits; it always includes a `.` or `e`
                // so floats stay distinguishable from integers.
                out.push_str(&format!("{x:?}"));
            } else {
                // JSON has no NaN/Infinity; match serde_json's `null`.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, x, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(Error::custom(format!(
                "unexpected character at byte {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            // Surrogate pairs are not needed by this
                            // workspace's data; map lone surrogates to
                            // the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(Error::custom("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (multi-byte safe).
                    let rest = &self.bytes[self.pos..];
                    let c = std::str::from_utf8(rest)
                        .map_err(|_| Error::custom("invalid UTF-8"))
                        .map(|t| t.chars().next().unwrap())
                        .or_else(|_| {
                            // Re-decode just the next scalar if later
                            // bytes are invalid.
                            std::str::from_utf8(&rest[..rest.len().min(4)])
                                .map(|t| t.chars().next().unwrap())
                                .map_err(|_| Error::custom("invalid UTF-8"))
                        })?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\n".to_string()).unwrap(), "\"hi\\n\"");
        let x: f64 = from_str("0.1").unwrap();
        assert_eq!(x, 0.1);
        let n: u64 = from_str(&u64::MAX.to_string()).unwrap();
        assert_eq!(n, u64::MAX);
    }

    #[test]
    fn floats_print_shortest_round_trip() {
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        let x = 1.0f64 / 3.0;
        let s = to_string(&x).unwrap();
        let back: f64 = from_str(&s).unwrap();
        assert_eq!(back.to_bits(), x.to_bits());
    }

    #[test]
    fn nested_values_round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Array(vec![Value::U64(1), Value::Null])),
            ("b".into(), Value::Str("x \"y\"".into())),
        ]);
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        let back2: Value = from_str(&pretty).unwrap();
        assert_eq!(back2, v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("nulL").is_err());
    }
}
