//! Offline stand-in for `criterion` (see `compat/README.md`).
//!
//! Provides the subset of the criterion API the bench suite uses and a
//! deliberately simple measurement loop: each benchmark runs one warm-up
//! call plus `sample_size` timed calls and reports the mean wall-clock
//! time per call. There is no statistical analysis, outlier detection or
//! HTML report — the numbers are indicative, not rigorous.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, &mut f);
        self
    }
}

/// A named set of benchmarks sharing settings.
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets how many timed calls each benchmark makes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.0);
        run_one(&name, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group (a no-op in the stand-in).
    pub fn finish(&mut self) {}
}

/// A benchmark's identifier: function name plus a parameter label.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Creates an id like `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function_name}/{parameter}"))
    }
}

/// Passed to benchmark closures to time the measured routine.
pub struct Bencher {
    sample_size: usize,
    samples: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`: one warm-up call, then `sample_size` measured calls.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            black_box(f());
        }
        self.elapsed = start.elapsed();
        self.samples = self.sample_size as u64;
    }
}

fn run_one(name: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        sample_size,
        samples: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    if b.samples == 0 {
        println!("{name:<50} (no measurement)");
        return;
    }
    let per_iter = b.elapsed / b.samples as u32;
    println!("{name:<50} time: {per_iter:>12?}  ({} samples)", b.samples);
}

/// Collects benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("compat/smoke", |b| b.iter(|| black_box(2u64 + 2)));
        let mut g = c.benchmark_group("group");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
