//! Offline stand-in for `serde` (see `compat/README.md`).
//!
//! Unlike real serde there is no `Serializer`/`Deserializer` abstraction:
//! [`Serialize`] renders straight into an owned JSON-shaped [`Value`] tree
//! and [`Deserialize`] reads back out of one. The derive macros (from the
//! sibling `serde_derive` stand-in) generate impls of these traits, and
//! the `serde_json` stand-in converts [`Value`] to and from text.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped data tree.
///
/// Integers keep their exact 64-bit representation (separately from
/// floats) so that byte counts and token counts round-trip losslessly.
/// Objects preserve insertion order for deterministic output.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Short type label used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// A (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` as a data tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Reads an instance out of `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

fn wrong_type<T>(want: &str, got: &Value) -> Result<T, Error> {
    Err(Error::custom(format!(
        "expected {want}, got {}",
        got.kind()
    )))
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => wrong_type("integer", v),
                }
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom("integer out of range")),
                    _ => wrong_type("integer", v),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::F64(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U64(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => wrong_type("number", v),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => wrong_type("bool", v),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => wrong_type("string", v),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) => xs.iter().map(T::from_value).collect(),
            _ => wrong_type("array", v),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(xs) if xs.len() == 2 => {
                Ok((A::from_value(&xs[0])?, B::from_value(&xs[1])?))
            }
            _ => wrong_type("2-element array", v),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integers_round_trip_exactly() {
        let big: u64 = u64::MAX - 3;
        assert_eq!(u64::from_value(&big.to_value()).unwrap(), big);
        let neg: i64 = -42;
        assert_eq!(i64::from_value(&neg.to_value()).unwrap(), neg);
        assert!(u32::from_value(&Value::U64(1 << 40)).is_err());
    }

    #[test]
    fn options_map_to_null() {
        let none: Option<u64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<u64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_value(&Value::U64(5)).unwrap(),
            Some(5u64)
        );
    }

    #[test]
    fn object_get_finds_keys() {
        let v = Value::Object(vec![("a".into(), Value::U64(1))]);
        assert_eq!(v.get("a"), Some(&Value::U64(1)));
        assert_eq!(v.get("b"), None);
    }
}
