//! Offline stand-in for `serde_derive` (see `compat/README.md`).
//!
//! Parses the item token stream by hand (no `syn`/`quote` available
//! offline) and emits impls of the stand-in `serde::Serialize` /
//! `serde::Deserialize` traits. Supported shapes, which cover every
//! derive site in this workspace:
//!
//! - structs with named fields (serialized as JSON objects)
//! - single-field tuple structs (serialized transparently as the inner
//!   value)
//! - enums with unit variants only (serialized as the variant name)
//!
//! Supported field attributes: `#[serde(default)]`,
//! `#[serde(skip, default = "path::to::fn")]` and any combination of
//! `skip` / `default` / `default = "..."`. Anything else panics at
//! compile time so unsupported uses are caught loudly rather than
//! silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the stand-in `serde::Serialize` trait.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body =
                String::from("let mut pairs: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for f in fields {
                if f.skip {
                    continue;
                }
                body.push_str(&format!(
                    "pairs.push((\"{n}\".to_string(), ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            body.push_str("::serde::Value::Object(pairs)");
            impl_serialize(name, &body)
        }
        Item::Newtype { name } => impl_serialize(name, "::serde::Serialize::to_value(&self.0)"),
        Item::Enum { name, variants } => {
            let mut body = String::from("match self {\n");
            for v in variants {
                body.push_str(&format!(
                    "{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),\n"
                ));
            }
            body.push('}');
            impl_serialize(name, &body)
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Serialize impl")
}

/// Derives the stand-in `serde::Deserialize` trait.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let mut body = format!(
                "if !matches!(v, ::serde::Value::Object(_)) {{\n\
                 return Err(::serde::Error::custom(format!(\n\
                 \"expected object for {name}, got {{}}\", v.kind())));\n}}\n\
                 Ok({name} {{\n"
            );
            for f in fields {
                let fallback = match (&f.default, f.skip) {
                    (Default_::Path(p), _) => format!("{p}()"),
                    (Default_::Std, _) | (Default_::None, true) => {
                        "::core::default::Default::default()".to_string()
                    }
                    (Default_::None, false) => format!(
                        "return Err(::serde::Error::custom(\
                         \"missing field `{n}` in {name}\"))",
                        n = f.name
                    ),
                };
                if f.skip {
                    body.push_str(&format!("{n}: {fallback},\n", n = f.name));
                } else {
                    body.push_str(&format!(
                        "{n}: match v.get(\"{n}\") {{\n\
                         Some(x) => ::serde::Deserialize::from_value(x)?,\n\
                         None => {fallback},\n}},\n",
                        n = f.name
                    ));
                }
            }
            body.push_str("})");
            impl_deserialize(name, &body)
        }
        Item::Newtype { name } => impl_deserialize(
            name,
            &format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        ),
        Item::Enum { name, variants } => {
            let mut body = "match v {\n::serde::Value::Str(s) => match s.as_str() {\n".to_string();
            for var in variants {
                body.push_str(&format!("\"{var}\" => Ok({name}::{var}),\n"));
            }
            body.push_str(&format!(
                "other => Err(::serde::Error::custom(format!(\n\
                 \"unknown {name} variant `{{}}`\", other))),\n}},\n\
                 other => Err(::serde::Error::custom(format!(\n\
                 \"expected string for {name}, got {{}}\", other.kind()))),\n}}"
            ));
            impl_deserialize(name, &body)
        }
    };
    code.parse()
        .expect("serde_derive generated invalid Deserialize impl")
}

fn impl_serialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn impl_deserialize(name: &str, body: &str) -> String {
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
}

enum Item {
    Struct { name: String, fields: Vec<Field> },
    Newtype { name: String },
    Enum { name: String, variants: Vec<String> },
}

struct Field {
    name: String,
    skip: bool,
    default: Default_,
}

enum Default_ {
    /// Required field: error if the key is absent.
    None,
    /// `#[serde(default)]`: fall back to `Default::default()`.
    Std,
    /// `#[serde(default = "path")]`: fall back to calling `path()`.
    Path(String),
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs(&toks, &mut i);
    skip_vis(&toks, &mut i);
    let kind = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other}"),
    };
    i += 1;
    let name = match &toks[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other}"),
    };
    i += 1;
    // Skip generic parameters if present: unsupported, but detect loudly.
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported by the offline stand-in");
    }
    match kind.as_str() {
        "struct" => match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                fields: parse_fields(g.stream()),
            },
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                let mut j = 0;
                skip_attrs(&inner, &mut j);
                skip_vis(&inner, &mut j);
                // A single type with no top-level comma = newtype struct.
                let mut depth = 0i32;
                for t in &inner[j..] {
                    match t {
                        TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                        TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                        TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                            panic!(
                                "serde_derive: only single-field tuple structs \
                                 are supported ({name})"
                            )
                        }
                        _ => {}
                    }
                }
                Item::Newtype { name }
            }
            other => panic!("serde_derive: unsupported struct body for {name}: {other}"),
        },
        "enum" => match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unsupported enum body for {name}: {other}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let (skip, default) = take_serde_attrs(&toks, &mut i);
        skip_vis(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected field name, got {other}"),
        };
        i += 1;
        match &toks[i] {
            TokenTree::Punct(p) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, got {other}"),
        }
        // Skip the type: everything up to the next comma outside angle
        // brackets. (Groups are single tokens, so parens/brackets in
        // types need no tracking.)
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs(&toks, &mut i);
        let name = match &toks[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("serde_derive: expected variant name, got {other}"),
        };
        i += 1;
        match toks.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(other) => panic!(
                "serde_derive: only unit enum variants are supported \
                 (variant `{name}` has payload starting at {other})"
            ),
        }
        variants.push(name);
    }
    variants
}

/// Skips any `#[...]` attributes, extracting `skip` / `default` info from
/// `#[serde(...)]` ones.
fn take_serde_attrs(toks: &[TokenTree], i: &mut usize) -> (bool, Default_) {
    let mut skip = false;
    let mut default = Default_::None;
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        let TokenTree::Group(g) = &toks[*i + 1] else {
            panic!("serde_derive: malformed attribute");
        };
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        if matches!(&inner[0], TokenTree::Ident(id) if id.to_string() == "serde") {
            let TokenTree::Group(args) = &inner[1] else {
                panic!("serde_derive: malformed #[serde] attribute");
            };
            parse_serde_args(args.stream(), &mut skip, &mut default);
        }
        *i += 2;
    }
    (skip, default)
}

fn parse_serde_args(stream: TokenStream, skip: &mut bool, default: &mut Default_) {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "skip" => {
                *skip = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "default" => {
                i += 1;
                if matches!(toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
                    i += 1;
                    let lit = toks[i].to_string();
                    let path = lit.trim_matches('"').to_string();
                    *default = Default_::Path(path);
                    i += 1;
                } else {
                    *default = Default_::Std;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' => i += 1,
            other => panic!(
                "serde_derive: unsupported #[serde] argument `{other}` \
                 (only `skip`, `default`, `default = \"path\"`)"
            ),
        }
    }
}

fn skip_attrs(toks: &[TokenTree], i: &mut usize) {
    while matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        *i += 2;
    }
}

fn skip_vis(toks: &[TokenTree], i: &mut usize) {
    if matches!(toks.get(*i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        *i += 1;
        if matches!(
            toks.get(*i),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            *i += 1;
        }
    }
}
