//! Observation is free: every golden scenario must produce a
//! byte-identical `RunReport` under every observer in the telemetry
//! stack, and the `MetricsHub`'s aggregates must reconcile with the
//! report's own counters.
//!
//! This is the telemetry counterpart of `golden_report.rs`: that suite
//! pins the unobserved behavior against committed fixtures; this one
//! pins that attaching `NullObserver`, `EventLog`, `MetricsHub`, or the
//! full `Telemetry` stack (trace recording + hub + store-event tracing)
//! changes nothing.

use cachedattention::engine::{
    run_trace, run_with_observer, EngineConfig, EventLog, Medium, Mode, NullObserver,
};
use cachedattention::models::ModelSpec;
use cachedattention::telemetry::{run_with_telemetry, MetricsHub};
use cachedattention::workload::{Generator, ShareGptProfile, Trace};

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

/// The same pressured configuration the golden fixtures use.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// All 13 golden scenarios from `golden_report.rs`.
fn scenarios() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{:?}", mode.label().to_lowercase(), medium);
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_no_async_save".into(), no_as));
    out
}

fn golden_trace() -> Trace {
    Generator::new(ShareGptProfile::default(), 7).trace(20)
}

#[test]
fn every_observer_yields_the_same_report() {
    for (name, cfg) in scenarios() {
        let trace = golden_trace();
        let baseline = run_trace(cfg.clone(), trace.clone());
        let expect = serde_json::to_string_pretty(&baseline).unwrap();

        let (nulled, _) = run_with_observer(cfg.clone(), trace.clone(), NullObserver);
        let (logged, log) = run_with_observer(cfg.clone(), trace.clone(), EventLog::new());
        let (hubbed, _hub) = run_with_observer(cfg.clone(), trace.clone(), MetricsHub::new());
        let (traced, tel) = run_with_telemetry(cfg, trace);

        for (observer, report) in [
            ("NullObserver", &nulled),
            ("EventLog", &logged),
            ("MetricsHub", &hubbed),
            ("Telemetry", &traced),
        ] {
            assert_eq!(
                expect,
                serde_json::to_string_pretty(report).unwrap(),
                "scenario `{name}`: report diverged under {observer}"
            );
        }
        assert!(
            !log.events().is_empty(),
            "scenario `{name}`: empty event log"
        );
        assert!(
            !tel.records().is_empty(),
            "scenario `{name}`: empty telemetry trace"
        );
    }
}

/// The hub sees every turn (the golden configs run with zero warmup), so
/// its per-tier hit counters must reconcile exactly with the report's.
#[test]
fn hub_counters_reconcile_with_the_report() {
    for mode in MODES {
        let cfg = pressured(mode, Medium::DramDisk);
        assert_eq!(cfg.warmup_turns, 0, "reconciliation needs zero warmup");
        let (report, hub) = run_with_observer(cfg, golden_trace(), MetricsHub::new());
        let snap = hub.snapshot();

        assert_eq!(snap.hits_fast, report.hits_fast.get());
        assert_eq!(snap.hits_slow, report.hits_slow.get());
        assert_eq!(snap.misses, report.misses.get());
        assert_eq!(snap.turns_arrived, report.turns_measured.get());
        assert_eq!(snap.retired, report.turns_measured.get());
        assert_eq!(snap.truncations, report.truncations.get());
        assert_eq!(snap.ttft_count, report.ttft.count() as u64);
        // Store-side streams agree with the store's own ledger.
        assert_eq!(snap.saves, report.store_stats.saves);
        assert_eq!(snap.save_rejections, report.store_stats.save_rejected);
        assert_eq!(snap.demotions, report.store_stats.demotions);
        assert_eq!(
            snap.prefetch_promotions + snap.demand_promotions,
            report.store_stats.promotions
        );
        if mode == Mode::CachedAttention {
            assert!(snap.store_hits_dram + snap.store_hits_disk > 0);
            assert_eq!(
                snap.store_hits_dram + snap.store_hits_disk,
                snap.hits_fast + snap.hits_slow
            );
        }
    }
}
