//! Property-based tests of the engine event stream's causal structure.
//!
//! Every turn of every session must walk the pipeline in order —
//! `TurnArrived ≤ Consulted ≤ Admitted ≤ PrefillDone ≤ Retired` — and
//! the committed stream must carry non-decreasing timestamps, for any
//! ShareGPT workload in any serving mode. This pins the contract the
//! telemetry exporters rely on when they pair events into spans.

use cachedattention::engine::{run_traced, EngineConfig, EngineEvent, Medium, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::sim::Time;
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;
use std::collections::HashMap;

/// Where a session currently is in its turn lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Arrived,
    Admitted,
    Prefilled,
}

fn modes() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::CachedAttention),
        Just(Mode::Recompute),
        Just(Mode::CoupledOverflow),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The per-session lifecycle automaton accepts every traced run.
    #[test]
    fn events_follow_the_turn_lifecycle(
        seed in 0u64..5_000,
        n_sessions in 4usize..20,
        mode in modes(),
        dram_gb in 2u64..16,
        disk_gb in 8u64..64,
    ) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
        cfg.medium = Medium::DramDisk;
        cfg.store.set_dram_bytes(dram_gb * 1_000_000_000);
        cfg.store.set_disk_bytes(disk_gb * 1_000_000_000);
        let (report, events) = run_traced(cfg, trace);
        prop_assert!(!events.is_empty());

        let mut phase: HashMap<u64, Phase> = HashMap::new();
        let mut prev_at = Time::ZERO;
        for ev in &events {
            // Commit order is time order: the engine emits every event
            // at its own simulation instant.
            prop_assert!(
                ev.at() >= prev_at,
                "timestamp regressed: {:?} after t={:?}",
                ev,
                prev_at
            );
            prev_at = ev.at();

            let sid = ev
                .session()
                .expect("fault-free runs only emit session-scoped events");
            let state = phase.entry(sid).or_insert(Phase::Idle);
            match ev {
                EngineEvent::TurnArrived { .. } => {
                    prop_assert!(
                        *state == Phase::Idle,
                        "turn arrived for session {} mid-turn", sid
                    );
                    *state = Phase::Arrived;
                }
                EngineEvent::Consulted { .. } | EngineEvent::Deferred { .. } => {
                    prop_assert!(
                        *state == Phase::Arrived,
                        "consult/defer for session {} outside the queue window", sid
                    );
                }
                EngineEvent::Admitted { .. } => {
                    prop_assert!(
                        *state == Phase::Arrived,
                        "admission for session {} without an arrival", sid
                    );
                    *state = Phase::Admitted;
                }
                EngineEvent::HbmReserved { .. } => {
                    prop_assert!(
                        *state == Phase::Admitted,
                        "HBM reservation for session {} outside admission", sid
                    );
                }
                EngineEvent::PrefillTimed { load_secs, comp_secs, stall_secs, .. } => {
                    prop_assert!(
                        *state == Phase::Admitted,
                        "prefill timing for session {} outside admission", sid
                    );
                    prop_assert!(
                        *load_secs >= 0.0 && *comp_secs >= 0.0 && *stall_secs >= 0.0,
                        "negative prefill timing for session {}", sid
                    );
                }
                EngineEvent::PrefillDone { .. } => {
                    prop_assert!(
                        *state == Phase::Admitted,
                        "prefill completion for session {} without admission", sid
                    );
                    *state = Phase::Prefilled;
                }
                EngineEvent::Retired { .. } => {
                    prop_assert!(
                        *state == Phase::Prefilled,
                        "retirement for session {} without a prefill", sid
                    );
                    *state = Phase::Idle;
                }
                // Context-overflow truncation position depends on the
                // mode; it only needs a live turn.
                EngineEvent::Truncated { .. } => {
                    prop_assert!(*state != Phase::Idle);
                }
                EngineEvent::InstanceCrashed { .. }
                | EngineEvent::TurnRerouted { .. }
                | EngineEvent::DegradedRecompute { .. } => {
                    prop_assert!(false, "fault event in a fault-free run: {:?}", ev);
                }
                EngineEvent::SloConfig { .. }
                | EngineEvent::TurnShed { .. }
                | EngineEvent::OverloadLevelChanged { .. }
                | EngineEvent::ScaleUp { .. }
                | EngineEvent::ScaleDown { .. } => {
                    prop_assert!(false, "overload event in an SLO-free run: {:?}", ev);
                }
            }
        }
        // Every turn that started also finished.
        for (sid, state) in &phase {
            prop_assert!(*state == Phase::Idle, "session {} left mid-turn", sid);
        }
        // The stream agrees with the report's totals.
        let retirements = events
            .iter()
            .filter(|e| matches!(e, EngineEvent::Retired { .. }))
            .count() as u64;
        prop_assert_eq!(retirements, report.turns_measured.get());
    }
}
