//! End-to-end tests of the `ca-sim` CLI binary.

use std::process::Command;

fn ca_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ca-sim"))
}

#[test]
fn models_lists_presets() {
    let out = ca_sim().arg("models").output().expect("run ca-sim");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in ["llama-13b", "llama-70b", "falcon-40b", "mistral-7b"] {
        assert!(stdout.contains(name), "missing {name} in:\n{stdout}");
    }
}

#[test]
fn no_args_prints_usage_and_fails() {
    let out = ca_sim().output().expect("run ca-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = ca_sim().arg("frobnicate").output().expect("run ca-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown command"));
}

#[test]
fn unknown_model_fails_cleanly() {
    let out = ca_sim()
        .args(["run", "--sessions", "5", "--model", "gpt-17"])
        .output()
        .expect("run ca-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown model"));
}

#[test]
fn trace_then_run_round_trips() {
    let dir = std::env::temp_dir().join(format!("ca-sim-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.json");
    let out = ca_sim()
        .args([
            "trace",
            "--sessions",
            "20",
            "--seed",
            "7",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("run ca-sim trace");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(trace_path.exists());
    let out = ca_sim()
        .args([
            "run",
            "--trace",
            trace_path.to_str().unwrap(),
            "--model",
            "falcon-40b",
            "--mode",
            "ca",
        ])
        .output()
        .expect("run ca-sim run");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("sessions done"));
    assert!(stdout.contains("20"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn compare_prints_both_modes() {
    let out = ca_sim()
        .args(["compare", "--sessions", "25", "--model", "llama-13b"])
        .output()
        .expect("run ca-sim compare");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("CachedAttention vs recomputation"));
    assert!(stdout.contains("hit rate"));
}

#[test]
fn invalid_compression_rejected() {
    let out = ca_sim()
        .args(["run", "--sessions", "5", "--compression", "1.5"])
        .output()
        .expect("run ca-sim");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--compression"));
}
