//! Depth-N tier-stack invariants and the 2-tier reduction golden.
//!
//! The store's tier vocabulary is an index into an arbitrary
//! [`TierStack`]; these tests pressure a four-deep stack (DRAM / pooled
//! memory / SSD / object store) with random operation sequences and
//! check the structural invariants the depth-N refactor must uphold:
//! every resident entry names a configured tier, no tier exceeds its
//! capacity, pinned entries are never evicted or demoted, and every
//! reported transfer is a single adjacent-tier hop. A final golden test
//! pins the reduction property: an explicitly constructed 2-tier stack
//! reproduces the paper-default engine run byte-for-byte.

use cachedattention::engine::{run_trace, EngineConfig, Mode};
use cachedattention::models::{ModelSpec, TierSpec, TierStack};
use cachedattention::sim::Time;
use cachedattention::store::{
    AttentionStore, Lookup, PolicyKind, QueueView, SessionId, StoreConfig, TierId,
};
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;
use std::collections::BTreeMap;

const MB: u64 = 1_000_000;

/// A small, pressured four-deep stack: every tier overflows into the
/// next during a run, so hops cross every boundary.
fn deep_stack() -> TierStack {
    TierStack::new(vec![
        TierSpec::dram(64 * MB),
        TierSpec::pooled_memory(96 * MB),
        TierSpec::ssd(160 * MB),
        TierSpec::object_store(256 * MB),
    ])
}

fn deep_store(policy: PolicyKind) -> AttentionStore {
    AttentionStore::new(StoreConfig {
        tiers: deep_stack(),
        block_bytes: 4 * MB,
        policy,
        ttl: None,
        dram_reserve_fraction: 0.1,
        default_session_bytes: 10 * MB,
        ..StoreConfig::default()
    })
}

/// One random store operation.
#[derive(Debug, Clone)]
enum Op {
    Save { sid: u64, bytes: u64 },
    Load { sid: u64 },
    Unpin { sid: u64 },
    Invalidate { sid: u64 },
    Prefetch { queue: Vec<u64> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32, 1u64..40).prop_map(|(sid, mb)| Op::Save {
            sid,
            bytes: mb * MB
        }),
        (0u64..32).prop_map(|sid| Op::Load { sid }),
        (0u64..32).prop_map(|sid| Op::Unpin { sid }),
        (0u64..32).prop_map(|sid| Op::Invalidate { sid }),
        proptest::collection::vec(0u64..32, 0..6).prop_map(|queue| Op::Prefetch { queue }),
    ]
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::SchedulerAware),
        Just(PolicyKind::Lru),
        Just(PolicyKind::Fifo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under arbitrary operation sequences on a four-deep stack: every
    /// hit names a tier inside the stack, per-tier occupancy respects
    /// per-tier capacity, pinned entries stay resident in the staging
    /// tier, and every transfer is one adjacent hop.
    #[test]
    fn deep_stack_invariants_under_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        policy in policies(),
    ) {
        let stack = deep_stack();
        let depth = stack.len();
        let mut store = deep_store(policy);
        // Sessions we pinned via a demand load and have not released,
        // mapped to the lowest (slowest) tier they may legally occupy:
        // a pinned entry may be promoted but never demoted or evicted.
        let mut pinned: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, op) in ops.iter().enumerate() {
            let now = Time::from_secs_f64(i as f64);
            let empty = QueueView::empty();
            let mut hops = Vec::new();
            match op {
                Op::Save { sid, bytes } => {
                    let (transfers, _) = store.save(SessionId(*sid), *bytes, bytes / MB, now, &empty);
                    hops = transfers;
                    // A save replaces the entry; stop tracking its pin.
                    pinned.remove(sid);
                }
                Op::Load { sid } => {
                    let (found, transfers) = store.load_for_use(SessionId(*sid), now, &empty);
                    hops = transfers;
                    if let Lookup::Hit(t) = found {
                        // `found` names the tier the KV was found in;
                        // the load stages it in tier 0 (or pins it in
                        // place when tier 0 cannot hold it).
                        prop_assert!(t.0 < depth);
                        let landed = match store.lookup(SessionId(*sid)) {
                            Lookup::Hit(l) => l.0,
                            Lookup::Miss => unreachable!("hit entry vanished"),
                        };
                        pinned.insert(*sid, landed);
                    }
                }
                Op::Unpin { sid } => {
                    store.unpin(SessionId(*sid));
                    pinned.remove(sid);
                }
                Op::Invalidate { sid } => {
                    store.invalidate(SessionId(*sid));
                    pinned.remove(sid);
                }
                Op::Prefetch { queue } => {
                    let q: Vec<SessionId> = queue.iter().map(|&s| SessionId(s)).collect();
                    hops = store.prefetch(now, &QueueView::new(&q));
                }
            }
            // Every reported transfer is a single adjacent-tier hop
            // between configured tiers.
            for t in &hops {
                prop_assert!(t.from.0.abs_diff(t.to.0) == 1, "non-adjacent hop {:?}", t);
                prop_assert!(t.from.0 < depth && t.to.0 < depth, "hop off the stack {:?}", t);
            }
            // Tier indices stay in bounds and capacities hold.
            for sid in 0..32 {
                if let Lookup::Hit(t) = store.lookup(SessionId(sid)) {
                    prop_assert!(t.0 < depth, "entry in unconfigured tier {:?}", t);
                }
            }
            for (idx, spec) in stack.0.iter().enumerate() {
                prop_assert!(
                    store.tier_used_bytes(TierId(idx)) <= spec.capacity,
                    "tier {idx} over capacity"
                );
            }
            // Pinned entries were neither evicted nor demoted (they may
            // have been promoted; ratchet the bound downward).
            for (sid, floor) in pinned.iter_mut() {
                let e = store.entry(SessionId(*sid));
                prop_assert!(e.is_some(), "pinned session {sid} evicted");
                prop_assert!(e.unwrap().pinned, "session {sid} lost its pin");
                match store.lookup(SessionId(*sid)) {
                    Lookup::Hit(t) => {
                        prop_assert!(
                            t.0 <= *floor,
                            "pinned session {sid} demoted from tier {floor} to {}",
                            t.0
                        );
                        *floor = t.0;
                    }
                    Lookup::Miss => unreachable!("entry checked above"),
                }
            }
        }
        // Conservation: entries' blocks equal the per-tier usage sum.
        let total_entry_bytes: u64 = (0..32)
            .filter_map(|s| store.entry(SessionId(s)))
            .map(|e| e.blocks.len() as u64 * 4 * MB)
            .sum();
        let total_used: u64 = (0..depth).map(|i| store.tier_used_bytes(TierId(i))).sum();
        prop_assert_eq!(total_entry_bytes, total_used);
    }
}

/// An engine run over an explicitly constructed 2-tier stack is
/// byte-for-byte the paper default: the depth-N machinery reduces
/// exactly to the pre-refactor DRAM/SSD pair. (The checked-in golden
/// fixtures pin the same property against history; this pins it against
/// the construction path.)
#[test]
fn two_tier_stack_reduces_to_the_paper_default() {
    let trace = Generator::new(ShareGptProfile::default(), 99).trace(40);
    let cfg_a = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    let mut cfg_b = cfg_a.clone();
    let (d, s) = (cfg_b.store.dram_bytes(), cfg_b.store.disk_bytes());
    cfg_b.store.tiers = TierStack::new(vec![TierSpec::dram(d), TierSpec::ssd(s)]);
    assert_eq!(cfg_b.store.tiers, TierStack::paper_two_tier());
    let ra = run_trace(cfg_a, trace.clone());
    let rb = run_trace(cfg_b, trace);
    assert_eq!(
        serde_json::to_string_pretty(&ra).unwrap(),
        serde_json::to_string_pretty(&rb).unwrap(),
        "explicit 2-tier stack diverged from the paper default"
    );
}

/// A four-deep stack runs the full engine end-to-end: every session
/// completes and entries reach below the staging tier.
#[test]
fn deep_stack_serves_a_trace_end_to_end() {
    let trace = Generator::new(ShareGptProfile::default(), 7).trace(30);
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    let max_session = cfg.model.kv_bytes(cfg.model.context_window as u64);
    cfg.store.tiers = TierStack::new(vec![
        TierSpec::dram(5 * max_session),
        TierSpec::pooled_memory(6 * max_session),
        TierSpec::ssd(8 * max_session),
        TierSpec::object_store(12 * max_session),
    ]);
    cfg.cluster.tiers = cfg.store.tiers.clone();
    let r = run_trace(cfg, trace);
    assert_eq!(r.sessions_done.get(), 30);
    assert!(r.hit_rate() > 0.0);
}
