//! The span profiler's contract: for any workload the engine can
//! produce, folding the merged trace yields well-formed span trees, and
//! on the 13 golden scenarios the trees reconcile exactly with the
//! pinned `RunReport` latencies.
//!
//! Well-formed means: zero violations, every turn is a single root
//! (`turn ▸ queue_wait ▸ prefill ▸ decode`), children are contained in
//! their parent, and siblings never overlap. Reconciliation means: the
//! forest has one turn per measured first token, the prefill span *is*
//! the report's service TTFT (their sums agree to float-noise), queue
//! waits sum to the report's, and each prefill span splits exactly into
//! visible stall + pure compute (the `total == comp + max(stall, wait)`
//! identity of the execution model).

use cachedattention::engine::{EngineConfig, Medium, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::telemetry::{run_with_telemetry, Span, SpanForest};
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

/// The same pressured configuration the golden fixtures use.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// All 13 golden scenarios from `golden_report.rs`.
fn scenarios() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{:?}", mode.label().to_lowercase(), medium);
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_no_async_save".into(), no_as));
    out
}

/// Recursively checks the tree invariants: non-negative extent,
/// children contained in the parent, siblings non-overlapping and
/// ordered by start.
fn assert_well_formed(span: &Span, ctx: &str) {
    const EPS: f64 = 1e-9;
    assert!(
        span.end_secs >= span.start_secs,
        "{ctx}: `{}` has negative extent [{}, {}]",
        span.name,
        span.start_secs,
        span.end_secs
    );
    let mut prev_end = span.start_secs;
    for child in &span.children {
        assert!(
            child.start_secs >= span.start_secs - EPS && child.end_secs <= span.end_secs + EPS,
            "{ctx}: `{}` [{}, {}] escapes parent `{}` [{}, {}]",
            child.name,
            child.start_secs,
            child.end_secs,
            span.name,
            span.start_secs,
            span.end_secs
        );
        assert!(
            child.start_secs >= prev_end - EPS,
            "{ctx}: `{}` starts at {} before its sibling ended at {}",
            child.name,
            child.start_secs,
            prev_end
        );
        prev_end = child.end_secs;
        assert_well_formed(child, ctx);
    }
}

/// Forest-wide invariants shared by the proptest and the golden suite.
/// `contiguous_prefill` is false for chunked-prefill configs, where
/// chunks interleave with decode iterations and the admission→first
/// token span legitimately exceeds pure compute + stall.
fn assert_forest_well_formed(forest: &SpanForest, ctx: &str, contiguous_prefill: bool) {
    assert!(
        forest.violations.is_empty(),
        "{ctx}: span violations: {:?}",
        forest.violations
    );
    for t in &forest.turns {
        let ctx = format!("{ctx}, session {} turn {}", t.session, t.turn);
        assert_eq!(t.root.name, "turn", "{ctx}: root is not `turn`");
        let names: Vec<&str> = t.root.children.iter().map(|c| c.name).collect();
        assert_eq!(
            names,
            ["queue_wait", "prefill", "decode"],
            "{ctx}: root stages are {names:?}"
        );
        assert_well_formed(&t.root, &ctx);
        // The prefill span splits into visible stall + pure compute:
        // the execution model's `total = comp + max(stall, wait)`
        // identity, with the wait share folded into `stall_secs` by the
        // `prefill_timed` emission. Timestamps are quantized to the
        // model's nanosecond tick independently of the f64 stage
        // durations, so the identity holds to microsecond slack, not
        // bit-exactly.
        let prefill = &t.root.children[1];
        if contiguous_prefill {
            assert!(
                (prefill.secs() - (t.comp_secs + t.stall_secs)).abs() < 1e-6,
                "{ctx}: prefill span {}s != comp {}s + stall {}s",
                prefill.secs(),
                t.comp_secs,
                t.stall_secs
            );
        } else {
            assert!(
                prefill.secs() >= t.comp_secs + t.stall_secs - 1e-6,
                "{ctx}: chunked prefill span {}s shorter than comp {}s + stall {}s",
                prefill.secs(),
                t.comp_secs,
                t.stall_secs
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For arbitrary workloads under every mode: the builder yields a
    /// violation-free forest of single-rooted, contained,
    /// non-overlapping span trees whose prefill spans obey the timing
    /// identity.
    #[test]
    fn arbitrary_workloads_build_well_formed_span_trees(
        seed in 0u64..5_000,
        n_sessions in 4usize..16,
        mode_ix in 0usize..3,
        medium_ix in 0usize..3,
        dram_gb in 2u64..16,
    ) {
        let mut cfg = pressured(MODES[mode_ix], MEDIUMS[medium_ix]);
        cfg.store.set_dram_bytes(dram_gb * 1_000_000_000);
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let (report, tel) = run_with_telemetry(cfg, trace);
        let forest = SpanForest::from_records(tel.records());
        let ctx = format!(
            "seed {seed}, {} sessions, {:?}/{:?}",
            n_sessions, MODES[mode_ix], MEDIUMS[medium_ix]
        );
        assert_forest_well_formed(&forest, &ctx, true);
        prop_assert!(
            forest.turns.len() == report.ttft.count(),
            "{}: forest has {} turns, report measured {}",
            ctx,
            forest.turns.len(),
            report.ttft.count()
        );
    }
}

/// Every golden scenario reconciles: turn counts match the pinned
/// report, the prefill spans sum to the report's TTFT mass, queue
/// waits sum to the report's, and the §3.2.1 overlap observable points
/// the right way for each ablation.
#[test]
fn golden_scenarios_reconcile_spans_with_reports() {
    for (name, cfg) in scenarios() {
        let trace = Generator::new(ShareGptProfile::default(), 7).trace(20);
        let contiguous = cfg.chunked_prefill_tokens.is_none();
        let (report, tel) = run_with_telemetry(cfg, trace);
        let forest = SpanForest::from_records(tel.records());
        assert_forest_well_formed(&forest, &name, contiguous);

        assert_eq!(
            forest.turns.len(),
            report.ttft.count(),
            "{name}: forest has {} turns, report measured {}",
            forest.turns.len(),
            report.ttft.count()
        );
        let span_ttft: f64 = forest.turns.iter().map(|t| t.ttft_service_secs()).sum();
        let report_ttft = report.ttft.mean() * report.ttft.count() as f64;
        assert!(
            (span_ttft - report_ttft).abs() < 1e-6,
            "{name}: span TTFT sum {span_ttft} != report TTFT sum {report_ttft}"
        );
        let span_wait: f64 = forest.turns.iter().map(|t| t.queue_wait_secs()).sum();
        assert!(
            (span_wait - report.queue_wait.sum()).abs() < 1e-6,
            "{name}: span queue-wait sum {span_wait} != report {}",
            report.queue_wait.sum()
        );
    }
}

/// The §3.2.1 observable behaves across the matrix: layer-wise preload
/// hides most of CA's KV transfers, Recompute has no transfers to
/// hide, and disabling preload makes the whole load visible.
#[test]
fn overlap_efficiency_matches_the_paper_story() {
    let run = |cfg: EngineConfig| {
        let trace = Generator::new(ShareGptProfile::default(), 7).trace(20);
        let (_report, tel) = run_with_telemetry(cfg, trace);
        SpanForest::from_records(tel.records()).overlap_efficiency()
    };
    let ca = run(pressured(Mode::CachedAttention, Medium::DramDisk));
    assert!(ca > 0.0, "CA DramDisk must hide some transfer, got {ca}");
    let re = run(pressured(Mode::Recompute, Medium::DramDisk));
    assert!(re.abs() < 1e-12, "RE has nothing to hide, got {re}");
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    let ablated = run(no_pl);
    // Without preload the stall equals the load up to nanosecond
    // quantization, so a residual ≪ 1% can remain.
    assert!(
        ablated.abs() < 1e-2,
        "preload=false leaves the load visible, got {ablated}"
    );
    assert!(ca > ablated, "preload must beat its ablation");
}
