//! Golden-report regression tests: pin the serving simulator's exact
//! behavior, bit for bit, across refactors.
//!
//! Each scenario runs a fixed-seed workload through the engine and
//! serializes the full [`RunReport`] to JSON. Because the simulator is
//! deterministic and the JSON writer prints floats with their shortest
//! round-trip representation, any behavioral change — a reordered
//! bandwidth charge, a different admission decision, an off-by-one in
//! the eviction window — shows up as a byte-level diff against the
//! committed fixture in `tests/golden/`.
//!
//! To regenerate fixtures after an *intentional* behavior change:
//!
//! ```text
//! REGEN_GOLDEN=1 cargo test --test golden_report
//! ```
//!
//! and commit the diff together with an explanation of why the numbers
//! moved.

use cachedattention::engine::{run_trace, EngineConfig, Medium, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::workload::{Generator, ShareGptProfile};
use std::path::PathBuf;

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

fn medium_label(m: Medium) -> &'static str {
    match m {
        Medium::DramDisk => "dramdisk",
        Medium::HbmDram => "hbmdram",
        Medium::HbmOnly => "hbmonly",
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// Runs one scenario and checks (or regenerates) its fixture.
fn check(name: &str, cfg: EngineConfig, n_sessions: usize, seed: u64) {
    let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
    let report = run_trace(cfg, trace);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');

    let path = golden_dir().join(format!("{name}.json"));
    if std::env::var_os("REGEN_GOLDEN").is_some() {
        std::fs::create_dir_all(golden_dir()).expect("create tests/golden");
        std::fs::write(&path, &json).expect("write fixture");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden fixture {} ({e}); run with REGEN_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        expected, json,
        "report for scenario `{name}` diverged from its golden fixture; \
         if the change is intentional, regenerate with REGEN_GOLDEN=1 and \
         commit the diff"
    );
}

/// A store small enough that 20 sessions of LLaMA-13B KV overflow DRAM
/// and spill to the slow tier, exercising eviction, prefetch and both
/// transfer links.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

#[test]
fn golden_modes_by_mediums() {
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{}", mode.label().to_lowercase(), medium_label(medium));
            check(&name, pressured(mode, medium), 20, 7);
        }
    }
}

/// Chunked prefill exercises the chunk issue/complete path in the
/// execution stage.
#[test]
fn golden_chunked_prefill() {
    let mut cfg = pressured(Mode::CachedAttention, Medium::DramDisk);
    cfg.chunked_prefill_tokens = Some(256);
    check("ca_dramdisk_chunked", cfg, 20, 7);
}

/// KV compression scales stored bytes and transfer times but not
/// compute; pins the compression-aware accounting in the transfer plan.
#[test]
fn golden_kv_compression() {
    let mut cfg = pressured(Mode::CachedAttention, Medium::DramDisk);
    cfg.kv_compression = 0.25;
    check("ca_dramdisk_int4", cfg, 20, 7);
}

/// The ablations from Fig 19/20: no layer-wise preload, no async save.
#[test]
fn golden_ablations() {
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    check("ca_dramdisk_no_preload", no_pl, 20, 7);

    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    check("ca_dramdisk_no_async_save", no_as, 20, 7);
}
