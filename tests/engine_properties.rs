//! Property-based tests of the serving engine: arbitrary configurations
//! (mode, buffers, chunking, compression, storage sizes) over arbitrary
//! small workloads must preserve the engine's accounting invariants.

use cachedattention::engine::{run_trace, EngineConfig, Medium, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;

fn modes() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::CachedAttention),
        Just(Mode::Recompute),
        Just(Mode::CoupledOverflow),
    ]
}

fn mediums() -> impl Strategy<Value = Medium> {
    prop_oneof![
        Just(Medium::DramDisk),
        Just(Medium::HbmDram),
        Just(Medium::HbmOnly),
    ]
}

fn model_specs() -> impl Strategy<Value = ModelSpec> {
    prop_oneof![
        Just(ModelSpec::llama2_13b()),
        Just(ModelSpec::llama1_65b()),
        Just(ModelSpec::falcon_40b()),
        Just(ModelSpec::mistral_7b()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any configuration serves any workload to completion with
    /// consistent accounting.
    #[test]
    fn engine_invariants_under_arbitrary_configs(
        seed in 0u64..10_000,
        n_sessions in 5usize..40,
        mode in modes(),
        medium in mediums(),
        model in model_specs(),
        max_batch in 1usize..32,
        preload in proptest::bool::ANY,
        async_save in proptest::bool::ANY,
        read_buffer in 0u32..40,
        chunk in proptest::option::of(64u64..1024),
        compression_pct in 10u32..=100,
        dram_gb in 1u64..64,
        disk_gb in 0u64..512,
    ) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let total_turns = trace.total_turns() as u64;
        let mut cfg = EngineConfig::paper(mode, model);
        cfg.medium = medium;
        cfg.max_batch = max_batch;
        cfg.preload = preload;
        cfg.async_save = async_save;
        cfg.read_buffer_layers = read_buffer;
        cfg.chunked_prefill_tokens = chunk;
        cfg.kv_compression = compression_pct as f64 / 100.0;
        cfg.store.set_dram_bytes(dram_gb * 1_000_000_000);
        cfg.store.set_disk_bytes(disk_gb * 1_000_000_000);
        let r = run_trace(cfg, trace);
        // Everything completes exactly once.
        prop_assert_eq!(r.sessions_done.get() as usize, n_sessions);
        prop_assert_eq!(r.turns_measured.get(), total_turns);
        prop_assert_eq!(r.ttft.count() as u64, total_turns);
        // Hit/miss partitions resumption turns.
        prop_assert_eq!(
            r.hits_fast.get() + r.hits_slow.get() + r.misses.get(),
            r.resumption_turns.get()
        );
        // Token accounting.
        prop_assert!(r.computed_tokens.get() <= r.prompt_tokens.get());
        if mode == Mode::Recompute {
            prop_assert_eq!(r.computed_tokens.get(), r.prompt_tokens.get());
            prop_assert_eq!(r.h2d_bytes, 0);
        }
        // Time sanity: busy components fit in the makespan per GPU.
        prop_assert!(r.makespan_secs >= 0.0);
        prop_assert!(
            r.prefill_busy_secs + r.decode_busy_secs <= r.makespan_secs + 1.0,
            "busy {} + {} exceeds makespan {}",
            r.prefill_busy_secs,
            r.decode_busy_secs,
            r.makespan_secs
        );
    }

    /// KV compression never increases the bytes moved and never lowers
    /// the hit rate, whatever the configuration.
    #[test]
    fn compression_is_monotone(
        seed in 0u64..1_000,
        dram_gb in 2u64..32,
        disk_gb in 8u64..128,
    ) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(30);
        let run_with = |ratio: f64| {
            let mut cfg =
                EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
            cfg.kv_compression = ratio;
            cfg.store.set_dram_bytes(dram_gb * 1_000_000_000);
            cfg.store.set_disk_bytes(disk_gb * 1_000_000_000);
            run_trace(cfg, trace.clone())
        };
        let raw = run_with(1.0);
        let packed = run_with(0.25);
        prop_assert!(packed.h2d_bytes <= raw.h2d_bytes);
        prop_assert!(packed.d2h_bytes <= raw.d2h_bytes);
        prop_assert!(packed.hit_rate() >= raw.hit_rate() - 1e-9);
    }
}
