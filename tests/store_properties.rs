//! Property-based integration tests of AttentionStore: under arbitrary
//! operation sequences the store never leaks blocks, never double-books
//! capacity, and lookups stay consistent.
//!
//! `tests/store_properties.proptest-regressions` is checked in on
//! purpose: proptest replays its seeds before sampling fresh cases, so
//! every CI run re-checks the once-failing inputs. The recorded seed
//! shrank to a SchedulerAware-policy sequence of five saves, a load, and
//! a prefetch of a duplicated queue (`[6, 6]`) — the duplicate-session
//! prefetch is what originally tripped capacity accounting. Do not
//! delete the file; append-only by proptest on new failures.

use cachedattention::models::TierStack;
use cachedattention::sim::Time;
use cachedattention::store::{
    AttentionStore, Lookup, PolicyKind, QueueView, SessionId, StoreConfig, TierId,
};
use proptest::prelude::*;

const MB: u64 = 1_000_000;

/// One random store operation.
#[derive(Debug, Clone)]
enum Op {
    Save { sid: u64, bytes: u64 },
    Load { sid: u64 },
    Unpin { sid: u64 },
    Truncate { sid: u64, bytes: u64 },
    Invalidate { sid: u64 },
    Prefetch { queue: Vec<u64> },
    Expire,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..24, 1u64..40).prop_map(|(sid, mb)| Op::Save {
            sid,
            bytes: mb * MB
        }),
        (0u64..24).prop_map(|sid| Op::Load { sid }),
        (0u64..24).prop_map(|sid| Op::Unpin { sid }),
        (0u64..24, 0u64..20).prop_map(|(sid, mb)| Op::Truncate {
            sid,
            bytes: mb * MB
        }),
        (0u64..24).prop_map(|sid| Op::Invalidate { sid }),
        proptest::collection::vec(0u64..24, 0..6).prop_map(|queue| Op::Prefetch { queue }),
        Just(Op::Expire),
    ]
}

fn policies() -> impl Strategy<Value = PolicyKind> {
    prop_oneof![
        Just(PolicyKind::SchedulerAware),
        Just(PolicyKind::Lru),
        Just(PolicyKind::Fifo),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold across arbitrary operation sequences on a small,
    /// pressured store.
    #[test]
    fn store_invariants_under_arbitrary_ops(
        ops in proptest::collection::vec(op_strategy(), 1..120),
        policy in policies(),
    ) {
        let mut store = AttentionStore::new(StoreConfig {
            tiers: TierStack::two_tier(100 * MB, 300 * MB),
            block_bytes: 4 * MB,
            policy,
            ttl: Some(cachedattention::sim::Dur::from_secs_f64(50.0)),
            dram_reserve_fraction: 0.1,
            default_session_bytes: 10 * MB,
            ..StoreConfig::default()
        });
        for (i, op) in ops.iter().enumerate() {
            let now = Time::from_secs_f64(i as f64);
            let empty = QueueView::empty();
            match op {
                Op::Save { sid, bytes } => {
                    let tokens = bytes / MB;
                    let (_, _) = store.save(SessionId(*sid), *bytes, tokens, now, &empty);
                }
                Op::Load { sid } => {
                    let (found, _) = store.load_for_use(SessionId(*sid), now, &empty);
                    // A hit means the entry exists afterwards, pinned.
                    if found != Lookup::Miss {
                        prop_assert!(store.entry(SessionId(*sid)).unwrap().pinned);
                    }
                }
                Op::Unpin { sid } => store.unpin(SessionId(*sid)),
                Op::Truncate { sid, bytes } => {
                    let tokens = bytes / MB;
                    store.truncate(SessionId(*sid), *bytes, tokens);
                }
                Op::Invalidate { sid } => store.invalidate(SessionId(*sid)),
                Op::Prefetch { queue } => {
                    let q: Vec<SessionId> = queue.iter().map(|&s| SessionId(s)).collect();
                    let view = QueueView::new(&q);
                    store.prefetch(now, &view);
                }
                Op::Expire => {
                    store.expire(now);
                }
            }
            // Capacity invariants: used bytes never exceed tier capacity.
            prop_assert!(store.dram_used_bytes() <= 100 * MB);
            prop_assert!(store.disk_used_bytes() <= 300 * MB);
            // Every cached session's lookup agrees with its entry.
            for sid in 0..24 {
                let sid = SessionId(sid);
                match store.lookup(sid) {
                    Lookup::Miss => prop_assert!(store.entry(sid).is_none()),
                    _ => prop_assert!(store.entry(sid).is_some()),
                }
            }
        }
        // Conservation at the end: sum of entry blocks equals used blocks.
        let total_entry_bytes: u64 = (0..24)
            .filter_map(|s| store.entry(SessionId(s)))
            .map(|e| e.blocks.len() as u64 * 4 * MB)
            .sum();
        prop_assert_eq!(
            total_entry_bytes,
            store.dram_used_bytes() + store.disk_used_bytes()
        );
    }

    /// The store's transfers are always internally consistent: a
    /// promotion requires the session to end in DRAM, a demotion in disk
    /// or gone.
    #[test]
    fn transfers_describe_real_movements(
        sids in proptest::collection::vec(0u64..12, 1..40),
    ) {
        let mut store = AttentionStore::new(StoreConfig {
            tiers: TierStack::two_tier(60 * MB, 120 * MB),
            block_bytes: 4 * MB,
            policy: PolicyKind::SchedulerAware,
            ttl: None,
            dram_reserve_fraction: 0.0,
            default_session_bytes: 20 * MB,
            ..StoreConfig::default()
        });
        let empty = QueueView::empty();
        for (i, &sid) in sids.iter().enumerate() {
            let now = Time::from_secs_f64(i as f64);
            let (transfers, saved) = store.save(SessionId(sid), 20 * MB, 20, now, &empty);
            if saved {
                prop_assert_eq!(store.lookup(SessionId(sid)), Lookup::Hit(TierId(0)));
            }
            for t in transfers {
                if t.is_demotion() {
                    // The victim moved down one hop (or was dropped later
                    // in the same call; it must not be back in tier 0).
                    prop_assert_ne!(store.lookup(t.session), Lookup::Hit(TierId(0)));
                } else {
                    prop_assert!(t.is_promotion());
                    // The session landed at the hop's destination or kept
                    // climbing (multi-hop chains end at tier 0).
                    let found = store.lookup(t.session);
                    prop_assert!(
                        matches!(found, Lookup::Hit(h) if h.0 <= t.to.0),
                        "promotion hop to {:?} but lookup found {:?}",
                        t.to,
                        found
                    );
                }
            }
        }
    }
}
