//! Cross-crate integration: workload generation → serving simulation →
//! metrics, under every mode and model.

use cachedattention::engine::{run_paper_workload, run_trace, EngineConfig, Mode};
use cachedattention::models::{self, ModelSpec};
use cachedattention::workload::{Generator, ShareGptProfile, Trace};

fn trace(n: usize, seed: u64) -> Trace {
    Generator::new(ShareGptProfile::default(), seed).trace(n)
}

/// Every mode finishes every session for every evaluation model, and the
/// accounting identities hold.
#[test]
fn all_modes_and_models_complete_with_consistent_accounting() {
    let t = trace(60, 3);
    let total_turns = t.total_turns() as u64;
    for model in models::evaluation_models() {
        for mode in [
            Mode::CachedAttention,
            Mode::Recompute,
            Mode::CoupledOverflow,
        ] {
            let r = run_paper_workload(mode, model.clone(), t.clone(), 0);
            assert_eq!(r.sessions_done.get(), 60, "{} {:?}", model.name, mode);
            assert_eq!(r.turns_measured.get(), total_turns);
            // Hits and misses partition the resumption turns.
            assert_eq!(
                r.hits_fast.get() + r.hits_slow.get() + r.misses.get(),
                r.resumption_turns.get(),
                "{} {:?}",
                model.name,
                mode
            );
            // Computed tokens never exceed presented tokens, and CA
            // computes strictly less.
            assert!(r.computed_tokens.get() <= r.prompt_tokens.get());
            if mode == Mode::Recompute {
                assert_eq!(r.computed_tokens.get(), r.prompt_tokens.get());
            }
            assert!(r.makespan_secs > 0.0);
            assert!(r.ttft.count() as u64 == total_turns);
        }
    }
}

/// CachedAttention strictly beats recomputation on all four headline
/// metrics, on every model (the paper's Figures 13–17 in miniature).
#[test]
fn ca_dominates_re_on_every_model() {
    let t = trace(150, 9);
    for model in models::evaluation_models() {
        let ca = run_paper_workload(Mode::CachedAttention, model.clone(), t.clone(), 0);
        let re = run_paper_workload(Mode::Recompute, model.clone(), t.clone(), 0);
        assert!(ca.hit_rate() > 0.5, "{} hit {}", model.name, ca.hit_rate());
        assert!(ca.ttft_mean() < re.ttft_mean(), "{}", model.name);
        assert!(
            ca.prefill_throughput() > 1.5 * re.prefill_throughput(),
            "{}: {} vs {}",
            model.name,
            ca.prefill_throughput(),
            re.prefill_throughput()
        );
        assert!(ca.busy_hours() < re.busy_hours(), "{}", model.name);
    }
}

/// The whole pipeline is deterministic end to end: trace generation,
/// simulation and reporting.
#[test]
fn pipeline_is_deterministic() {
    let a = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::falcon_40b(),
        trace(80, 17),
        20,
    );
    let b = run_paper_workload(
        Mode::CachedAttention,
        ModelSpec::falcon_40b(),
        trace(80, 17),
        20,
    );
    assert_eq!(a.makespan_secs, b.makespan_secs);
    assert_eq!(a.h2d_bytes, b.h2d_bytes);
    assert_eq!(a.d2h_bytes, b.d2h_bytes);
    assert_eq!(a.store_stats, b.store_stats);
    assert_eq!(a.ttft_mean(), b.ttft_mean());
}

/// KV bytes flowing host→device are explained by reuse: RE moves nothing,
/// CA moves roughly `reused tokens × bytes/token` plus staging.
#[test]
fn byte_flows_match_modes() {
    let t = trace(60, 5);
    let model = ModelSpec::llama2_13b();
    let ca = run_paper_workload(Mode::CachedAttention, model.clone(), t.clone(), 0);
    let re = run_paper_workload(Mode::Recompute, model, t, 0);
    assert_eq!(re.h2d_bytes, 0);
    assert_eq!(re.d2h_bytes, 0);
    assert!(ca.h2d_bytes > 0);
    assert!(ca.d2h_bytes > 0);
    // Saves flow down: everything computed eventually crosses d2h once.
    assert!(ca.store_stats.save_bytes > 0);
}

/// Disabling the paper's two overlap optimizations costs time, never
/// correctness.
#[test]
fn overlap_optimizations_help() {
    let t = trace(100, 21);
    let base = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    let with = run_trace(base.clone(), t.clone());
    let mut no_overlap = base;
    no_overlap.preload = false;
    no_overlap.async_save = false;
    let without = run_trace(no_overlap, t);
    assert_eq!(with.sessions_done.get(), without.sessions_done.get());
    assert!(
        with.ttft_mean() <= without.ttft_mean(),
        "preload should cut TTFT: {} vs {}",
        with.ttft_mean(),
        without.ttft_mean()
    );
    assert!(with.stall_secs <= without.stall_secs + 1.0);
}

/// Truncation counters fire exactly for models whose window the workload
/// overflows.
#[test]
fn truncation_depends_on_window() {
    let t = trace(120, 33);
    // 2K window: many sessions overflow.
    let small = run_paper_workload(Mode::CachedAttention, ModelSpec::llama1_65b(), t.clone(), 0);
    // 32K window: nothing overflows.
    let big = run_paper_workload(Mode::CachedAttention, ModelSpec::mistral_7b(), t, 0);
    assert!(small.truncations.get() > 0);
    assert_eq!(big.truncations.get(), 0);
}
