//! Fault-injection properties: the cluster degrades, it never drops.
//!
//! Three contracts pin the fault layer:
//!
//! 1. **Liveness under arbitrary chaos** — for *any* fault plan (random
//!    link windows, SSD error/corruption rates, pressure spikes, crash
//!    schedules), every turn of every session still walks a valid
//!    lifecycle and eventually retires, timestamps never regress, and a
//!    rerouted turn restarts its pipeline on exactly one new instance.
//! 2. **Strict additivity** — an *empty* fault plan produces a report
//!    byte-identical to a run with no plan at all: the fault layer only
//!    exists when a fault is scripted.
//! 3. **Failover determinism** — a scripted mid-run crash on a
//!    2-instance cluster yields a byte-identical serialized report every
//!    time, under either router, and the report's fault counters agree
//!    with the emitted event stream.

use cachedattention::engine::{
    run_cluster, run_cluster_with_observer, ClusterConfig, EngineConfig, EngineEvent,
    EngineObserver, Medium, Mode, RouterKind,
};
use cachedattention::models::ModelSpec;
use cachedattention::sim::{Dur, FaultPlan, RetryPolicy, Time};
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;
use std::collections::HashMap;

/// The engine config the chaos runs use: paper settings squeezed enough
/// to exercise eviction and the slow tier.
fn pressured() -> EngineConfig {
    let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
    cfg.medium = Medium::DramDisk;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// Captures the instance-tagged engine event stream.
#[derive(Default)]
struct InstanceLog {
    events: Vec<(u32, EngineEvent)>,
}

impl EngineObserver for InstanceLog {
    fn on_event(&mut self, ev: EngineEvent) {
        panic!("cluster emitted an unattributed event: {ev:?}");
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        self.events.push((instance, ev));
    }
}

/// Where a session currently is in its turn lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Arrived,
    Admitted,
    Prefilled,
}

fn routers() -> impl Strategy<Value = RouterKind> {
    prop_oneof![
        Just(RouterKind::SessionAffinity),
        Just(RouterKind::LeastLoaded),
    ]
}

/// An arbitrary fault plan: every fault family drawn independently, with
/// windows and crash times inside the first minute so they land inside
/// small runs. Crash instances may exceed the cluster size (the
/// orchestrator must ignore those) and may target every instance (it
/// must refuse to kill the last one alive).
fn fault_plans() -> impl Strategy<Value = FaultPlan> {
    let window = (0u64..40_000, 1u64..30_000, 1u64..8);
    let rates = (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.2);
    let pressure = proptest::collection::vec((1u64..60_000, 0.1f64..0.9), 0..2);
    let crashes = proptest::collection::vec((0u32..4, 1u64..40_000), 0..3);
    ((0u64..u64::MAX, window), (rates, pressure, crashes)).prop_map(
        |((seed, (w_start, w_len, factor)), ((rd, wr, corrupt), pressure, crashes))| {
            let mut plan = FaultPlan::new(seed)
                .with_link_slowdown(
                    "slow-rd",
                    Time::from_millis(w_start),
                    Time::from_millis(w_start + w_len),
                    factor as f64,
                )
                .with_link_stall(
                    "slow-wr",
                    Time::from_millis(w_start / 2),
                    Time::from_millis(w_start / 2 + w_len / 2),
                )
                .with_ssd_errors(rd, wr, corrupt)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff: Dur::from_millis(1),
                    multiplier: 2.0,
                });
            for (at, fraction) in pressure {
                plan = plan.with_dram_pressure(Time::from_millis(at), fraction);
            }
            for (instance, at) in crashes {
                plan = plan.with_crash(instance, Time::from_millis(at));
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any fault plan, instance count and router: timestamps never
    /// regress, every turn walks the (fault-extended) lifecycle on one
    /// instance at a time, a reroute hands the turn to a different live
    /// instance and restarts its pipeline, and every session finishes.
    #[test]
    fn any_fault_plan_preserves_the_turn_lifecycle(
        seed in 0u64..5_000,
        n_sessions in 6usize..16,
        n_instances in 1usize..4,
        router in routers(),
        plan in fault_plans(),
    ) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let cfg = ClusterConfig::new(pressured(), n_instances, router).with_faults(plan);
        let (report, log) = run_cluster_with_observer(cfg, trace, InstanceLog::default());
        prop_assert!(!log.events.is_empty());

        // Liveness: chaos may slow turns down, never drop them.
        prop_assert_eq!(report.aggregate.sessions_done.get(), n_sessions as u64);

        // (phase, owning instance of the live turn) per session.
        let mut state: HashMap<u64, (Phase, u32)> = HashMap::new();
        let mut crashed: Vec<u32> = Vec::new();
        let mut prev_at = Time::ZERO;
        for (inst, ev) in &log.events {
            prop_assert!((*inst as usize) < n_instances, "phantom instance {inst}");
            prop_assert!(
                ev.at() >= prev_at,
                "timestamp regressed: {:?} after t={:?}",
                ev,
                prev_at
            );
            prev_at = ev.at();

            if let EngineEvent::InstanceCrashed { instance, .. } = ev {
                prop_assert_eq!(*instance, *inst);
                prop_assert!(!crashed.contains(instance), "instance {} crashed twice", instance);
                crashed.push(*instance);
                prop_assert!(
                    crashed.len() < n_instances,
                    "the last alive instance crashed"
                );
                continue;
            }

            // No SloPolicy is configured, so the overload vocabulary must
            // be absent: a chaos run is strictly additive over the fault
            // layer and never sheds, degrades by level, or scales.
            prop_assert!(
                !matches!(
                    ev,
                    EngineEvent::SloConfig { .. }
                        | EngineEvent::TurnShed { .. }
                        | EngineEvent::OverloadLevelChanged { .. }
                        | EngineEvent::ScaleUp { .. }
                        | EngineEvent::ScaleDown { .. }
                ),
                "overload event {:?} in an SLO-free run",
                ev
            );

            let sid = ev.session().expect("only crashes are instance-scoped");
            let entry = state.entry(sid).or_insert((Phase::Idle, *inst));
            let (phase, owner) = *entry;
            if phase != Phase::Idle && !matches!(ev, EngineEvent::TurnRerouted { .. }) {
                prop_assert!(
                    owner == *inst,
                    "session {} jumped from instance {} to {} mid-turn",
                    sid,
                    owner,
                    *inst
                );
            }
            match ev {
                EngineEvent::TurnArrived { .. } => {
                    prop_assert!(phase == Phase::Idle, "arrival for session {} mid-turn", sid);
                    *entry = (Phase::Arrived, *inst);
                }
                EngineEvent::Consulted { .. } | EngineEvent::Deferred { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                }
                EngineEvent::DegradedRecompute { .. } => {
                    // Degradation happens at consult time, before admission.
                    prop_assert!(phase == Phase::Arrived);
                }
                EngineEvent::Admitted { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                    entry.0 = Phase::Admitted;
                }
                EngineEvent::HbmReserved { .. } | EngineEvent::PrefillTimed { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                }
                EngineEvent::PrefillDone { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                    entry.0 = Phase::Prefilled;
                }
                EngineEvent::Retired { .. } => {
                    prop_assert!(phase == Phase::Prefilled);
                    entry.0 = Phase::Idle;
                }
                EngineEvent::Truncated { .. } => {
                    prop_assert!(phase != Phase::Idle);
                }
                EngineEvent::TurnRerouted { from, to, .. } => {
                    // A reroute moves a *live* turn off the instance that
                    // just died onto a different, live one, and restarts
                    // its pipeline from the queue.
                    prop_assert!(phase != Phase::Idle, "rerouted an idle session {}", sid);
                    prop_assert_eq!(*from, owner);
                    prop_assert!(crashed.contains(from), "reroute off a live instance");
                    prop_assert!(*from != *to, "rerouted onto the dead instance");
                    prop_assert!(!crashed.contains(to), "rerouted onto a crashed instance");
                    *entry = (Phase::Arrived, *to);
                }
                EngineEvent::InstanceCrashed { .. }
                | EngineEvent::SloConfig { .. }
                | EngineEvent::TurnShed { .. }
                | EngineEvent::OverloadLevelChanged { .. }
                | EngineEvent::ScaleUp { .. }
                | EngineEvent::ScaleDown { .. } => unreachable!("handled above"),
            }
        }
        for (sid, (phase, _)) in &state {
            prop_assert!(*phase == Phase::Idle, "session {} left mid-turn", sid);
        }

        // The report's fault counters agree with the event stream.
        let count = |pred: fn(&EngineEvent) -> bool| {
            log.events.iter().filter(|(_, e)| pred(e)).count() as u64
        };
        prop_assert_eq!(
            count(|e| matches!(e, EngineEvent::InstanceCrashed { .. })),
            report.faults.instance_crashes
        );
        prop_assert_eq!(
            count(|e| matches!(e, EngineEvent::TurnRerouted { .. })),
            report.faults.turns_rerouted
        );
        prop_assert_eq!(
            count(|e| matches!(e, EngineEvent::DegradedRecompute { .. })),
            report.faults.recompute_fallbacks
        );
        prop_assert_eq!(
            count(|e| matches!(e, EngineEvent::Retired { .. })),
            report.aggregate.turns_measured.get()
        );
    }

    /// An empty fault plan is not a fault plan: the serialized report is
    /// byte-identical to a run configured with no plan at all.
    #[test]
    fn empty_plan_is_byte_identical_to_no_plan(
        seed in 0u64..5_000,
        n_sessions in 6usize..16,
        n_instances in 1usize..4,
        router in routers(),
        fault_seed in 0u64..u64::MAX,
    ) {
        let gen = || Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let plain = run_cluster(ClusterConfig::new(pressured(), n_instances, router), gen());
        let empty = run_cluster(
            ClusterConfig::new(pressured(), n_instances, router)
                .with_faults(FaultPlan::new(fault_seed)),
            gen(),
        );
        prop_assert!(!empty.faults.any());
        prop_assert_eq!(
            serde_json::to_string_pretty(&plain).expect("serializes"),
            serde_json::to_string_pretty(&empty).expect("serializes"),
        );
    }
}

/// The scripted failover scenario: instance 1 of 2 dies at t=10s while
/// SSD faults and a pressure spike are live.
fn failover_plan() -> FaultPlan {
    FaultPlan::new(0xFA11)
        .with_link_slowdown(
            "slow-rd",
            Time::from_secs_f64(2.0),
            Time::from_secs_f64(20.0),
            3.0,
        )
        .with_ssd_errors(0.05, 0.05, 0.02)
        .with_dram_pressure(Time::from_secs_f64(6.0), 0.5)
        .with_crash(1, Time::from_secs_f64(10.0))
}

/// Re-running the same scripted crash is byte-for-byte deterministic
/// under either router, the crash actually fires, and no turn is lost.
#[test]
fn scripted_failover_is_deterministic_and_lossless() {
    for router in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
        let run = || {
            let trace = Generator::new(ShareGptProfile::default(), 7).trace(30);
            let cfg = ClusterConfig::new(pressured(), 2, router).with_faults(failover_plan());
            let (report, log) = run_cluster_with_observer(cfg, trace, InstanceLog::default());
            let json = serde_json::to_string_pretty(&report).expect("serializes");
            (report, log, json)
        };
        let (report, log, json) = run();
        for _ in 0..2 {
            let (_, _, again) = run();
            assert_eq!(json, again, "{}: failover run diverged", router.label());
        }

        // The scripted faults really fired and the cluster absorbed them.
        assert_eq!(report.faults.instance_crashes, 1, "{}", router.label());
        assert_eq!(report.faults.pressure_events, 1, "{}", router.label());
        assert_eq!(
            report.aggregate.sessions_done.get(),
            30,
            "{}: sessions lost in failover",
            router.label()
        );
        let crashed: Vec<_> = report.instances.iter().filter(|i| i.crashed).collect();
        assert_eq!(crashed.len(), 1);
        assert_eq!(crashed[0].instance, 1);

        // After the crash instant every pipeline event happens on the
        // survivor.
        let crash_at = log
            .events
            .iter()
            .find_map(|(_, e)| match e {
                EngineEvent::InstanceCrashed { at, .. } => Some(*at),
                _ => None,
            })
            .expect("crash event emitted");
        for (inst, ev) in &log.events {
            if ev.at() > crash_at && !matches!(ev, EngineEvent::TurnRerouted { .. }) {
                assert_eq!(
                    *inst,
                    0,
                    "{}: event on the dead instance after the crash: {ev:?}",
                    router.label()
                );
            }
        }
    }
}
