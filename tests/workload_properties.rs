//! Property-based tests of the workload pipeline: any generated trace is
//! servable, serialization round-trips, and the serving engine preserves
//! trace-level token accounting.
//!
//! `tests/workload_properties.proptest-regressions` is checked in on
//! purpose: proptest replays its seeds before sampling fresh cases, so
//! every CI run re-checks the once-failing inputs. The recorded case
//! shrank to generator `seed = 142`, which produces a trace whose token
//! accounting once disagreed with the served totals. Do not delete the
//! file; proptest appends to it on new failures.

use cachedattention::engine::{run_paper_workload, Mode};
use cachedattention::models::ModelSpec;
use cachedattention::workload::{Generator, ShareGptProfile, Trace};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any profile within sane ranges produces a servable trace and the
    /// engine completes it.
    #[test]
    fn any_profile_is_servable(
        seed in 0u64..1_000,
        p_single in 0.05f64..0.9,
        geo_p in 0.05f64..0.9,
        user_mu in 2.0f64..6.0,
        resp_mu in 2.0f64..6.0,
        rate in 0.2f64..3.0,
        think in 0.0f64..120.0,
    ) {
        let profile = ShareGptProfile {
            p_single_turn: p_single,
            turn_geo_p: geo_p,
            user_mu,
            resp_mu,
            arrival_rate: rate,
            mean_think_secs: think,
            ..ShareGptProfile::default()
        };
        let trace = Generator::new(profile, seed).trace(25);
        prop_assert_eq!(trace.sessions.len(), 25);
        // Arrivals are sorted and non-negative.
        for w in trace.sessions.windows(2) {
            prop_assert!(w[0].arrival <= w[1].arrival);
        }
        let r = run_paper_workload(Mode::CachedAttention, ModelSpec::llama2_13b(), trace.clone(), 0);
        prop_assert_eq!(r.sessions_done.get(), 25);
        prop_assert_eq!(r.turns_measured.get() as usize, trace.total_turns());
    }

    /// JSON serialization round-trips arbitrary generated traces.
    #[test]
    fn trace_json_round_trips(seed in 0u64..10_000, n in 1usize..40) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n);
        let json = trace.to_json();
        let back = Trace::from_json(&json).unwrap();
        prop_assert_eq!(trace, back);
    }

    /// Prompt-token accounting: the engine's measured prompt tokens equal
    /// the trace's post-truncation context sizes — and without context
    /// overflow they equal the raw trace totals exactly.
    #[test]
    fn token_accounting_matches_trace(seed in 0u64..500) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(20);
        // Restrict to traces where even the longest session stays inside
        // Mistral's 32K window, so no truncation perturbs the accounting
        // (heavy-tailed message lengths can overflow even 32K).
        prop_assume!(trace
            .sessions
            .iter()
            .all(|s| s.total_tokens() <= 32_768));
        let r = run_paper_workload(Mode::Recompute, ModelSpec::mistral_7b(), trace.clone(), 0);
        let expected: u64 = trace
            .sessions
            .iter()
            .flat_map(|s| {
                (0..s.n_turns()).map(move |i| {
                    s.historical_tokens_at(i) + s.turns[i].user_tokens as u64
                })
            })
            .sum();
        prop_assert_eq!(r.prompt_tokens.get(), expected);
    }
}
