//! Window-vs-snapshot reconciliation: the streaming observability plane
//! must tell the same story as the end-of-run aggregates.
//!
//! The [`WindowedHub`] folds the identical commit-ordered event stream
//! the scalar `MetricsHub` consumes, just sliced into tumbling windows
//! of virtual time. Three contracts pin it, for every mode, medium,
//! window width — and for arbitrary fault plans on a cluster:
//!
//! 1. **Counter conservation** — summing any counter over all windows
//!    yields exactly the scalar snapshot's total. Nothing is double
//!    counted at a window boundary, nothing is dropped.
//! 2. **Sketch fidelity** — the merged per-window [`LogSketch`]es hold
//!    exactly as many samples as the snapshot's exact histograms, and
//!    every percentile the snapshot reports is reproduced within the
//!    sketch's documented relative error.
//! 3. **Window geometry** — indexes are dense from zero and window `i`
//!    spans exactly `[i*width, (i+1)*width)`: contiguous,
//!    non-overlapping, gap-free.

use cachedattention::engine::{ClusterConfig, EngineConfig, Medium, Mode, RouterKind};
use cachedattention::metrics::LogSketch;
use cachedattention::models::ModelSpec;
use cachedattention::sim::{Dur, FaultPlan, RetryPolicy, Time};
use cachedattention::telemetry::{
    run_cluster_with_windowed_telemetry, run_with_windowed_telemetry, MetricsSnapshot, Telemetry,
    WindowSeries,
};
use cachedattention::workload::{Generator, ShareGptProfile, Trace};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

/// The pressured config the golden scenarios use: small enough tiers to
/// exercise eviction and the slow path.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

fn modes() -> impl Strategy<Value = Mode> {
    prop_oneof![
        Just(Mode::CachedAttention),
        Just(Mode::Recompute),
        Just(Mode::CoupledOverflow),
    ]
}

fn mediums() -> impl Strategy<Value = Medium> {
    prop_oneof![
        Just(Medium::DramDisk),
        Just(Medium::HbmDram),
        Just(Medium::HbmOnly),
    ]
}

fn routers() -> impl Strategy<Value = RouterKind> {
    prop_oneof![
        Just(RouterKind::SessionAffinity),
        Just(RouterKind::LeastLoaded),
    ]
}

/// Arbitrary fault plans, the same families the chaos suite draws:
/// link windows, SSD error rates, pressure spikes, crash schedules.
fn fault_plans() -> impl Strategy<Value = FaultPlan> {
    let window = (0u64..40_000, 1u64..30_000, 1u64..8);
    let rates = (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.2);
    let pressure = proptest::collection::vec((1u64..60_000, 0.1f64..0.9), 0..2);
    let crashes = proptest::collection::vec((0u32..4, 1u64..40_000), 0..3);
    ((0u64..u64::MAX, window), (rates, pressure, crashes)).prop_map(
        |((seed, (w_start, w_len, factor)), ((rd, wr, corrupt), pressure, crashes))| {
            let mut plan = FaultPlan::new(seed)
                .with_link_slowdown(
                    "slow-rd",
                    Time::from_millis(w_start),
                    Time::from_millis(w_start + w_len),
                    factor as f64,
                )
                .with_ssd_errors(rd, wr, corrupt)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff: Dur::from_millis(1),
                    multiplier: 2.0,
                });
            for (at, fraction) in pressure {
                plan = plan.with_dram_pressure(Time::from_millis(at), fraction);
            }
            for (instance, at) in crashes {
                plan = plan.with_crash(instance, Time::from_millis(at));
            }
            plan
        },
    )
}

fn gen_trace(seed: u64, sessions: usize) -> Trace {
    Generator::new(ShareGptProfile::default(), seed).trace(sessions)
}

/// Contract 3: dense indexes, exact `[i*width, (i+1)*width)` spans.
fn assert_contiguous(series: &WindowSeries) -> Result<(), TestCaseError> {
    for (i, w) in series.windows.iter().enumerate() {
        prop_assert_eq!(w.index, i);
        prop_assert!(
            (w.start_secs - i as f64 * series.width_secs).abs() < 1e-9,
            "window {i} starts at {} not {}",
            w.start_secs,
            i as f64 * series.width_secs
        );
        prop_assert!(
            (w.end_secs - (i + 1) as f64 * series.width_secs).abs() < 1e-9,
            "window {i} ends at {} not {}",
            w.end_secs,
            (i + 1) as f64 * series.width_secs
        );
        prop_assert!(
            w.queue_depth_peak >= w.queue_depth_end,
            "window {i}: peak {} below end {}",
            w.queue_depth_peak,
            w.queue_depth_end
        );
    }
    Ok(())
}

/// Contracts 1 and 2 against the scalar hub's snapshot.
fn assert_reconciles(tel: &Telemetry) -> Result<(), TestCaseError> {
    let series = tel.window_series().expect("windowed plane attached");
    let snap = tel.snapshot();
    assert_contiguous(&series)?;
    let totals = series.totals();

    // 1. Counter conservation: every field the snapshot also carries.
    let c = &totals.counters;
    for (name, windowed, scalar) in [
        ("turns_arrived", c.turns_arrived, snap.turns_arrived),
        ("retired", c.retired, snap.retired),
        ("truncations", c.truncations, snap.truncations),
        ("hits_fast", c.hits_fast, snap.hits_fast),
        ("hits_slow", c.hits_slow, snap.hits_slow),
        ("misses", c.misses, snap.misses),
        ("deferred_events", c.deferred_events, snap.deferred_events),
        ("saves", c.saves, snap.saves),
        ("save_rejections", c.save_rejections, snap.save_rejections),
        ("store_misses", c.store_misses, snap.store_misses),
        (
            "prefetch_promotions",
            c.prefetch_promotions,
            snap.prefetch_promotions,
        ),
        (
            "demand_promotions",
            c.demand_promotions,
            snap.demand_promotions,
        ),
        ("demotions", c.demotions, snap.demotions),
        ("evictions", c.evictions, snap.evictions),
        ("drops", c.drops, snap.drops),
        ("expirations", c.expirations, snap.expirations),
        ("write_stalls", c.write_stalls, snap.write_stalls),
        ("read_retries", c.read_retries, snap.read_retries),
        ("read_failures", c.read_failures, snap.read_failures),
        ("write_retries", c.write_retries, snap.write_retries),
        ("write_failures", c.write_failures, snap.write_failures),
        (
            "corruptions_detected",
            c.corruptions_detected,
            snap.corruptions_detected,
        ),
        (
            "recompute_fallbacks",
            c.recompute_fallbacks,
            snap.recompute_fallbacks,
        ),
        (
            "instance_crashes",
            c.instance_crashes,
            snap.instance_crashes,
        ),
        ("turns_rerouted", c.turns_rerouted, snap.turns_rerouted),
    ] {
        prop_assert!(
            windowed == scalar,
            "counter `{name}` diverged: windows sum {windowed}, snapshot {scalar}"
        );
    }

    // Per-tier hits are conserved tier by tier, in tier order.
    prop_assert_eq!(series.tier_names.len(), snap.tiers.len());
    for (i, t) in snap.tiers.iter().enumerate() {
        let windowed: u64 = series
            .windows
            .iter()
            .map(|w| w.tiers.get(i).map_or(0, |wt| wt.store_hits))
            .sum();
        prop_assert!(
            windowed == t.store_hits,
            "tier {i} (`{}`) hits diverged",
            t.name
        );
    }

    // 2. Sketch fidelity: same sample counts, percentiles within the
    // sketch's documented relative error of the exact histograms.
    prop_assert_eq!(totals.ttft.count(), snap.ttft_count);
    assert_percentiles_close(&totals, &snap)?;
    Ok(())
}

fn assert_percentiles_close(
    totals: &cachedattention::telemetry::WindowTotals,
    snap: &MetricsSnapshot,
) -> Result<(), TestCaseError> {
    let rel = LogSketch::relative_error();
    let close =
        |label: &str, sketch: Option<f64>, exact: Option<f64>| -> Result<(), TestCaseError> {
            match (sketch, exact) {
                (None, None) => Ok(()),
                (Some(s), Some(e)) => {
                    prop_assert!(
                        (s - e).abs() <= rel * e.abs() + 1e-9,
                        "{label}: sketch {s} vs exact {e} (allowed rel {rel})"
                    );
                    Ok(())
                }
                (s, e) => {
                    prop_assert!(
                        false,
                        "{label}: presence diverged, sketch {s:?} exact {e:?}"
                    );
                    Ok(())
                }
            }
        };
    close("ttft p50", totals.ttft.percentile(50.0), snap.ttft_p50_secs)?;
    close("ttft p95", totals.ttft.percentile(95.0), snap.ttft_p95_secs)?;
    close("ttft p99", totals.ttft.percentile(99.0), snap.ttft_p99_secs)?;
    close(
        "queue_wait p50",
        totals.queue_wait.percentile(50.0),
        snap.queue_wait_p50_secs,
    )?;
    close(
        "queue_wait p95",
        totals.queue_wait.percentile(95.0),
        snap.queue_wait_p95_secs,
    )?;
    close(
        "queue_wait p99",
        totals.queue_wait.percentile(99.0),
        snap.queue_wait_p99_secs,
    )?;
    close(
        "prefetch p99",
        totals.prefetch_latency.percentile(99.0),
        snap.prefetch_latency_p99_secs,
    )?;
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Single-engine reconciliation across every mode x medium and an
    /// arbitrary window width: the windowed plane conserves counters
    /// and reproduces the snapshot's percentiles.
    #[test]
    fn windows_reconcile_with_snapshot_across_modes(
        mode in modes(),
        medium in mediums(),
        width_secs in 5.0f64..180.0,
        seed in 0u64..5_000,
    ) {
        let trace = gen_trace(seed, 14);
        let (_report, tel) =
            run_with_windowed_telemetry(pressured(mode, medium), trace, width_secs);
        assert_reconciles(&tel)?;
    }

    /// The same reconciliation holds on a faulted cluster: reroutes,
    /// retries, crashes and pressure spikes land in some window, and
    /// the sums still agree with the scalar hub exactly.
    #[test]
    fn windows_reconcile_with_snapshot_under_faults(
        plan in fault_plans(),
        router in routers(),
        n_instances in 1usize..3,
        width_secs in 5.0f64..120.0,
        seed in 0u64..5_000,
    ) {
        let trace = gen_trace(seed, 10);
        let cfg = ClusterConfig::new(
            pressured(Mode::CachedAttention, Medium::DramDisk),
            n_instances,
            router,
        )
        .with_faults(plan);
        let (_report, tel) = run_cluster_with_windowed_telemetry(cfg, trace, width_secs);
        assert_reconciles(&tel)?;
    }
}
