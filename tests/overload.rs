//! Overload-control properties: the SLO layer degrades service, it
//! never corrupts the turn lifecycle — and when it is empty, it does
//! not exist.
//!
//! Three contracts pin the admission/ladder/autoscaler stack:
//!
//! 1. **Strict additivity** — attaching [`SloPolicy::noop`] reproduces
//!    every committed golden fixture byte-for-byte, and on arbitrary
//!    cluster shapes the full serialized report is byte-identical to a
//!    run with no policy at all.
//! 2. **Lifecycle under overload × chaos** — for *any* SLO policy
//!    (EDF or FCFS, tiny inboxes, aggressive ladder, autoscaling) and
//!    *any* fault plan, every turn still walks a valid lifecycle:
//!    admitted turns retire exactly once, a shed is terminal for its
//!    session (nothing follows it), reroutes only leave dead or retired
//!    instances, and a retired instance is silent until revived.
//! 3. **Accounting** — `sessions_done + turns_shed` covers the whole
//!    trace, and the overload counters agree with the event stream.

use cachedattention::engine::{
    run_cluster, run_cluster_with_observer, AutoscalePolicy, ClusterConfig, EngineConfig,
    EngineEvent, EngineObserver, Medium, Mode, RouterKind, SloPolicy,
};
use cachedattention::models::ModelSpec;
use cachedattention::sim::{Dur, FaultPlan, RetryPolicy, Time};
use cachedattention::workload::{Generator, ShareGptProfile, Surge};
use proptest::prelude::*;
use std::collections::{BTreeSet, HashMap};
use std::path::PathBuf;

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

fn medium_label(m: Medium) -> &'static str {
    match m {
        Medium::DramDisk => "dramdisk",
        Medium::HbmDram => "hbmdram",
        Medium::HbmOnly => "hbmonly",
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The same pressured configuration the golden fixtures use.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// All 13 golden scenarios from `golden_report.rs`, by fixture name.
fn scenarios() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{}", mode.label().to_lowercase(), medium_label(medium));
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_dramdisk_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_dramdisk_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_dramdisk_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_dramdisk_no_async_save".into(), no_as));
    out
}

/// An empty SLO config is no SLO config: attaching [`SloPolicy::noop`]
/// to a 1-instance cluster must reproduce every committed golden
/// fixture byte-for-byte, under either router — the policy is dropped
/// at config time and no overload path ever runs.
#[test]
fn noop_slo_policy_reproduces_all_golden_fixtures() {
    for router in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
        for (name, cfg) in scenarios() {
            let trace = Generator::new(ShareGptProfile::default(), 7).trace(20);
            let report = run_cluster(
                ClusterConfig::new(cfg, 1, router).with_slo(SloPolicy::noop()),
                trace,
            );
            assert!(!report.overload.any(), "noop policy left overload tracks");
            let mut json = serde_json::to_string_pretty(&report.aggregate).expect("serializes");
            json.push('\n');

            let path = golden_dir().join(format!("{name}.json"));
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
            assert_eq!(
                expected,
                json,
                "noop SloPolicy diverged from golden `{name}` under the {} router",
                router.label()
            );
        }
    }
}

/// Captures the instance-tagged engine event stream.
#[derive(Default)]
struct InstanceLog {
    events: Vec<(u32, EngineEvent)>,
}

impl EngineObserver for InstanceLog {
    fn on_event(&mut self, ev: EngineEvent) {
        panic!("cluster emitted an unattributed event: {ev:?}");
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        self.events.push((instance, ev));
    }
}

/// Where a session currently is in its turn lifecycle. `Shed` is
/// terminal: a session that received a typed rejection emits nothing
/// afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Arrived,
    Admitted,
    Prefilled,
    Shed,
}

fn routers() -> impl Strategy<Value = RouterKind> {
    prop_oneof![
        Just(RouterKind::SessionAffinity),
        Just(RouterKind::LeastLoaded),
    ]
}

/// An arbitrary non-noop overload policy: EDF or FCFS admission, inbox
/// capacities small enough to overflow, decision ticks of a few
/// seconds, a ladder threshold low enough to climb rungs under the
/// surge, and (sometimes) a queue-driven autoscaler.
fn slo_policies() -> impl Strategy<Value = SloPolicy> {
    let target = 0.5f64..6.0;
    let inbox = 1usize..48;
    let tick = 1.0f64..8.0;
    let depth = 1.0f64..10.0;
    let autoscale = proptest::option::of((1usize..3, 3usize..6, 2.0f64..8.0));
    ((target, 0u8..2, inbox), (tick, depth, autoscale)).prop_map(
        |((target, edf, inbox), (tick, depth, autoscale))| {
            let edf = edf == 1;
            let mut p = SloPolicy::new(Dur::from_secs_f64(target))
                .with_inbox_capacity(inbox)
                .with_tick(Dur::from_secs_f64(tick));
            p.degrade_queue_depth = depth;
            if !edf {
                p = p.with_fcfs();
            }
            if let Some((min, max, up)) = autoscale {
                let mut a = AutoscalePolicy::default().with_bounds(min, max);
                a.up_queue_depth = up;
                a.cooldown = Dur::from_secs_f64(tick * 2.0);
                p = p.with_autoscale(a);
            }
            p
        },
    )
}

/// An arbitrary fault plan, as in `chaos.rs`: link windows, SSD error
/// rates, pressure spikes, and crash schedules inside the first minute.
fn fault_plans() -> impl Strategy<Value = FaultPlan> {
    let window = (0u64..40_000, 1u64..30_000, 1u64..8);
    let rates = (0.0f64..0.3, 0.0f64..0.3, 0.0f64..0.2);
    let pressure = proptest::collection::vec((1u64..60_000, 0.1f64..0.9), 0..2);
    let crashes = proptest::collection::vec((0u32..4, 1u64..40_000), 0..3);
    ((0u64..u64::MAX, window), (rates, pressure, crashes)).prop_map(
        |((seed, (w_start, w_len, factor)), ((rd, wr, corrupt), pressure, crashes))| {
            let mut plan = FaultPlan::new(seed)
                .with_link_slowdown(
                    "slow-rd",
                    Time::from_millis(w_start),
                    Time::from_millis(w_start + w_len),
                    factor as f64,
                )
                .with_ssd_errors(rd, wr, corrupt)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    base_backoff: Dur::from_millis(1),
                    multiplier: 2.0,
                });
            for (at, fraction) in pressure {
                plan = plan.with_dram_pressure(Time::from_millis(at), fraction);
            }
            for (instance, at) in crashes {
                plan = plan.with_crash(instance, Time::from_millis(at));
            }
            plan
        },
    )
}

/// The flash-crowd workload the overload properties run against: a
/// doubled base rate with a fixed surge window early enough to land
/// inside small traces.
fn surge_trace(seed: u64, n_sessions: usize, factor: f64) -> cachedattention::workload::Trace {
    let profile = ShareGptProfile::default()
        .with_arrival_rate(2.0)
        .with_surge(Surge {
            start_secs: 5.0,
            duration_secs: 60.0,
            factor,
        });
    Generator::new(profile, seed).trace(n_sessions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any overload policy, fault plan, cluster shape and router:
    /// timestamps never regress, every turn walks the (overload- and
    /// fault-extended) lifecycle on one instance at a time, a shed is
    /// terminal for its session, reroutes only leave crashed or retired
    /// instances, retired instances stay silent until revived, and the
    /// report's overload counters agree with the event stream.
    #[test]
    fn any_overload_policy_preserves_the_turn_lifecycle(
        seed in 0u64..5_000,
        n_sessions in 8usize..20,
        n_instances in 1usize..4,
        surge in 2.0f64..6.0,
        router in routers(),
        policy in slo_policies(),
        plan in fault_plans(),
    ) {
        let trace = surge_trace(seed, n_sessions, surge);
        let cfg = ClusterConfig::new(
            pressured(Mode::CachedAttention, Medium::DramDisk),
            n_instances,
            router,
        )
        .with_slo(policy)
        .with_faults(plan);
        let (report, log) = run_cluster_with_observer(cfg, trace, InstanceLog::default());
        prop_assert!(!log.events.is_empty());

        // (phase, owning instance of the live turn) per session.
        let mut state: HashMap<u64, (Phase, u32)> = HashMap::new();
        let mut crashed: BTreeSet<u32> = BTreeSet::new();
        let mut retired_instances: BTreeSet<u32> = BTreeSet::new();
        let mut slo_headers = 0u64;
        let mut sheds = 0u64;
        let mut transitions = 0u64;
        let mut scale_ups = 0u64;
        let mut scale_downs = 0u64;
        let mut ladder = "normal";
        let mut prev_at = Time::ZERO;
        for (inst, ev) in &log.events {
            prop_assert!(
                ev.at() >= prev_at,
                "timestamp regressed: {:?} after t={:?}",
                ev,
                prev_at
            );
            prev_at = ev.at();

            // Instance-scoped overload and fault events first.
            match ev {
                EngineEvent::SloConfig { .. } => {
                    slo_headers += 1;
                    continue;
                }
                EngineEvent::OverloadLevelChanged { from, to, .. } => {
                    prop_assert!(slo_headers > 0, "ladder moved before the SLO header");
                    prop_assert!(*from == ladder, "ladder jumped a rung: {} -> {}", from, to);
                    prop_assert!(from != to, "ladder 'moved' to the same rung");
                    ladder = to;
                    transitions += 1;
                    continue;
                }
                EngineEvent::ScaleUp { instance, n_alive, .. } => {
                    prop_assert!(slo_headers > 0, "scaled before the SLO header");
                    prop_assert!(*instance == *inst, "scale_up attributed elsewhere");
                    prop_assert!(
                        !crashed.contains(instance),
                        "autoscaler revived crashed instance {}", instance
                    );
                    retired_instances.remove(instance);
                    prop_assert!(*n_alive >= 1);
                    scale_ups += 1;
                    continue;
                }
                EngineEvent::ScaleDown { instance, n_alive, .. } => {
                    prop_assert!(slo_headers > 0, "scaled before the SLO header");
                    prop_assert!(*instance == *inst, "scale_down attributed elsewhere");
                    prop_assert!(
                        retired_instances.insert(*instance),
                        "instance {} retired twice without a revival", instance
                    );
                    prop_assert!(*n_alive >= 1, "autoscaler retired the last instance");
                    scale_downs += 1;
                    continue;
                }
                EngineEvent::InstanceCrashed { instance, .. } => {
                    prop_assert_eq!(*instance, *inst);
                    prop_assert!(
                        crashed.insert(*instance),
                        "instance {} crashed twice", instance
                    );
                    continue;
                }
                _ => {}
            }

            let sid = ev.session().expect("remaining events are session-scoped");
            // A cleanly retired instance holds nothing (the drain moved
            // its queue, batch and in-flight prefill), so nothing may be
            // attributed to it until the autoscaler revives it.
            prop_assert!(
                !retired_instances.contains(inst),
                "{} for session {} attributed to retired instance {}",
                ev.kind(),
                sid,
                inst
            );
            let entry = state.entry(sid).or_insert((Phase::Idle, *inst));
            let (phase, owner) = *entry;
            prop_assert!(
                phase != Phase::Shed,
                "session {} emitted {} after its shed",
                sid,
                ev.kind()
            );
            if phase != Phase::Idle && !matches!(ev, EngineEvent::TurnRerouted { .. }) {
                prop_assert!(
                    owner == *inst,
                    "session {} jumped from instance {} to {} mid-turn",
                    sid,
                    owner,
                    *inst
                );
            }
            match ev {
                EngineEvent::TurnArrived { .. } => {
                    prop_assert!(phase == Phase::Idle, "arrival for session {} mid-turn", sid);
                    *entry = (Phase::Arrived, *inst);
                }
                EngineEvent::TurnShed { reason, .. } => {
                    // Shed happens at admission time, before any job is
                    // created; it is terminal for the session.
                    prop_assert!(phase == Phase::Arrived, "shed a session not arriving");
                    prop_assert!(
                        *reason == "inbox_full" || *reason == "overload_shed",
                        "unknown shed reason {:?}", reason
                    );
                    entry.0 = Phase::Shed;
                    sheds += 1;
                }
                EngineEvent::Consulted { .. } | EngineEvent::Deferred { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                }
                EngineEvent::DegradedRecompute { .. } => {
                    // Fault fallback and the ladder's recompute-only rung
                    // both degrade at consult time, before admission.
                    prop_assert!(phase == Phase::Arrived);
                }
                EngineEvent::Admitted { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                    entry.0 = Phase::Admitted;
                }
                EngineEvent::HbmReserved { .. } | EngineEvent::PrefillTimed { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                }
                EngineEvent::PrefillDone { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                    entry.0 = Phase::Prefilled;
                }
                EngineEvent::Retired { .. } => {
                    prop_assert!(phase == Phase::Prefilled);
                    entry.0 = Phase::Idle;
                }
                EngineEvent::Truncated { .. } => {
                    prop_assert!(phase != Phase::Idle);
                }
                EngineEvent::TurnRerouted { from, to, .. } => {
                    // A reroute moves a *live* turn off an instance that
                    // crashed or was cleanly retired, onto a live one,
                    // and restarts its pipeline from the queue.
                    prop_assert!(phase != Phase::Idle, "rerouted an idle session {}", sid);
                    prop_assert_eq!(*from, owner);
                    prop_assert!(
                        crashed.contains(from) || retired_instances.contains(from),
                        "rerouted off live instance {}", from
                    );
                    prop_assert!(*from != *to, "rerouted onto the same instance");
                    prop_assert!(!crashed.contains(to), "rerouted onto a crashed instance");
                    prop_assert!(
                        !retired_instances.contains(to),
                        "rerouted onto retired instance {}", to
                    );
                    *entry = (Phase::Arrived, *to);
                }
                EngineEvent::InstanceCrashed { .. }
                | EngineEvent::SloConfig { .. }
                | EngineEvent::OverloadLevelChanged { .. }
                | EngineEvent::ScaleUp { .. }
                | EngineEvent::ScaleDown { .. } => unreachable!("handled above"),
            }
        }

        // Every session either finished all its turns or stopped at
        // exactly one typed rejection; nothing is left mid-turn.
        let mut shed_sessions = 0u64;
        for (sid, (phase, _)) in &state {
            prop_assert!(
                *phase == Phase::Idle || *phase == Phase::Shed,
                "session {} left mid-turn in phase {:?}",
                sid,
                phase
            );
            if *phase == Phase::Shed {
                shed_sessions += 1;
            }
        }
        prop_assert!(sheds == shed_sessions, "a session shed more than once");
        prop_assert!(
            report.aggregate.sessions_done.get() + sheds == n_sessions as u64,
            "sessions neither finished nor shed"
        );

        // The overload counters agree with the event stream, and the
        // SLO header is emitted exactly once.
        prop_assert_eq!(slo_headers, 1);
        prop_assert_eq!(report.overload.turns_shed, sheds);
        prop_assert_eq!(report.overload.level_transitions, transitions);
        prop_assert_eq!(report.overload.scale_ups, scale_ups);
        prop_assert_eq!(report.overload.scale_downs, scale_downs);
        let retirements = log
            .events
            .iter()
            .filter(|(_, e)| matches!(e, EngineEvent::Retired { .. }))
            .count() as u64;
        prop_assert_eq!(retirements, report.aggregate.turns_measured.get());
    }

    /// Attaching the no-op policy to an arbitrary cluster shape is
    /// byte-identical to attaching none: the whole serialized report —
    /// not just the aggregate — matches, so the SLO layer has zero
    /// footprint when unconfigured.
    #[test]
    fn noop_policy_is_byte_identical_to_no_policy(
        seed in 0u64..5_000,
        n_sessions in 6usize..16,
        n_instances in 1usize..4,
        router in routers(),
    ) {
        let cfg = || pressured(Mode::CachedAttention, Medium::DramDisk);
        let gen = || Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let plain = run_cluster(ClusterConfig::new(cfg(), n_instances, router), gen());
        let noop = run_cluster(
            ClusterConfig::new(cfg(), n_instances, router).with_slo(SloPolicy::noop()),
            gen(),
        );
        prop_assert!(!noop.overload.any());
        prop_assert_eq!(
            serde_json::to_string_pretty(&plain).expect("serializes"),
            serde_json::to_string_pretty(&noop).expect("serializes"),
        );
    }
}
