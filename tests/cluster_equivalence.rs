//! The cluster refactor's non-negotiable invariant: a 1-instance
//! cluster with the session-affinity router IS the single-GPU engine.
//!
//! `golden_report.rs` pins `run_trace` (now the `ServingSim` facade over
//! `ClusterSim`) against the committed fixtures. This suite closes the
//! loop from the other side: driving `ClusterSim` *directly* at
//! `n_instances = 1` must reproduce those same fixtures byte-for-byte,
//! so the facade and the orchestrator cannot drift apart. A property
//! test then checks the cluster-specific causal structure for N > 1:
//! every turn walks the pipeline in order on one instance, and a session
//! is never live on two instances at once.

use cachedattention::engine::{
    run_cluster, run_cluster_with_observer, ClusterConfig, EngineConfig, EngineEvent,
    EngineObserver, Medium, Mode, RouterKind,
};
use cachedattention::models::ModelSpec;
use cachedattention::sim::Time;
use cachedattention::workload::{Generator, ShareGptProfile};
use proptest::prelude::*;
use std::collections::HashMap;
use std::path::PathBuf;

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

fn medium_label(m: Medium) -> &'static str {
    match m {
        Medium::DramDisk => "dramdisk",
        Medium::HbmDram => "hbmdram",
        Medium::HbmOnly => "hbmonly",
    }
}

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

/// The same pressured configuration the golden fixtures use.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// All 13 golden scenarios from `golden_report.rs`, by fixture name.
fn scenarios() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{}", mode.label().to_lowercase(), medium_label(medium));
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_dramdisk_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_dramdisk_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_dramdisk_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_dramdisk_no_async_save".into(), no_as));
    out
}

/// A single-instance cluster must reproduce every committed golden
/// fixture byte-for-byte, under either router (both degenerate to
/// "everything on instance 0" at N = 1).
#[test]
fn single_instance_cluster_reproduces_all_golden_fixtures() {
    for router in [RouterKind::SessionAffinity, RouterKind::LeastLoaded] {
        for (name, cfg) in scenarios() {
            let trace = Generator::new(ShareGptProfile::default(), 7).trace(20);
            let report = run_cluster(ClusterConfig::new(cfg, 1, router), trace);
            let mut json = serde_json::to_string_pretty(&report.aggregate).expect("serializes");
            json.push('\n');

            let path = golden_dir().join(format!("{name}.json"));
            let expected = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("missing golden fixture {}: {e}", path.display()));
            assert_eq!(
                expected,
                json,
                "ClusterSim{{n_instances: 1, router: {}}} diverged from golden `{name}`",
                router.label()
            );
            // The per-instance breakdown of a 1-instance cluster is the
            // aggregate.
            assert_eq!(report.instances.len(), 1);
            let inst = &report.instances[0];
            assert_eq!(inst.h2d_bytes, report.aggregate.h2d_bytes);
            assert_eq!(inst.d2h_bytes, report.aggregate.d2h_bytes);
            assert_eq!(inst.slow_read_bytes, report.aggregate.slow_read_bytes);
            assert_eq!(inst.slow_write_bytes, report.aggregate.slow_write_bytes);
            assert_eq!(
                inst.hbm_high_water_bytes,
                report.aggregate.hbm_high_water_bytes
            );
            assert_eq!(inst.turns_done, report.aggregate.turns_measured.get());
        }
    }
}

/// Captures the instance-tagged engine event stream.
#[derive(Default)]
struct InstanceLog {
    events: Vec<(u32, EngineEvent)>,
}

impl EngineObserver for InstanceLog {
    fn on_event(&mut self, ev: EngineEvent) {
        // The cluster orchestrator always attributes events; reaching
        // this instance-blind path would itself be a bug.
        panic!("cluster emitted an unattributed event: {ev:?}");
    }

    fn on_instance_event(&mut self, instance: u32, ev: EngineEvent) {
        self.events.push((instance, ev));
    }
}

/// Where a session currently is in its turn lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Arrived,
    Admitted,
    Prefilled,
}

fn routers() -> impl Strategy<Value = RouterKind> {
    prop_oneof![
        Just(RouterKind::SessionAffinity),
        Just(RouterKind::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For any instance count and router: timestamps never regress in
    /// commit order, every turn walks
    /// `TurnArrived ≤ Consulted ≤ Admitted ≤ PrefillDone ≤ Retired`
    /// entirely on one instance, and a session is never live on two
    /// instances concurrently.
    #[test]
    fn cluster_events_follow_the_lifecycle_on_one_instance(
        seed in 0u64..5_000,
        n_sessions in 6usize..20,
        n_instances in 1usize..5,
        router in routers(),
        dram_gb in 2u64..16,
    ) {
        let trace = Generator::new(ShareGptProfile::default(), seed).trace(n_sessions);
        let mut cfg = EngineConfig::paper(Mode::CachedAttention, ModelSpec::llama2_13b());
        cfg.medium = Medium::DramDisk;
        cfg.store.set_dram_bytes(dram_gb * 1_000_000_000);
        cfg.store.set_disk_bytes(40_000_000_000);
        let (report, log) = run_cluster_with_observer(
            ClusterConfig::new(cfg, n_instances, router),
            trace,
            InstanceLog::default(),
        );
        prop_assert!(!log.events.is_empty());
        prop_assert_eq!(report.instances.len(), n_instances);

        // (phase, owning instance of the live turn) per session.
        let mut state: HashMap<u64, (Phase, u32)> = HashMap::new();
        let mut prev_at = Time::ZERO;
        for (inst, ev) in &log.events {
            prop_assert!((*inst as usize) < n_instances, "phantom instance {inst}");
            prop_assert!(
                ev.at() >= prev_at,
                "timestamp regressed: {:?} after t={:?}",
                ev,
                prev_at
            );
            prev_at = ev.at();

            let sid = ev
                .session()
                .expect("fault-free runs only emit session-scoped events");
            let entry = state.entry(sid).or_insert((Phase::Idle, *inst));
            let (phase, owner) = *entry;
            if phase != Phase::Idle {
                // A live turn sticks to the instance that received it:
                // no session runs on two instances concurrently.
                prop_assert!(
                    owner == *inst,
                    "session {} jumped from instance {} to {} mid-turn",
                    sid,
                    owner,
                    *inst
                );
            }
            match ev {
                EngineEvent::TurnArrived { .. } => {
                    prop_assert!(
                        phase == Phase::Idle,
                        "turn arrived for session {} mid-turn", sid
                    );
                    *entry = (Phase::Arrived, *inst);
                }
                EngineEvent::Consulted { .. } | EngineEvent::Deferred { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                }
                EngineEvent::Admitted { .. } => {
                    prop_assert!(phase == Phase::Arrived);
                    entry.0 = Phase::Admitted;
                }
                EngineEvent::HbmReserved { .. } | EngineEvent::PrefillTimed { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                }
                EngineEvent::PrefillDone { .. } => {
                    prop_assert!(phase == Phase::Admitted);
                    entry.0 = Phase::Prefilled;
                }
                EngineEvent::Retired { .. } => {
                    prop_assert!(phase == Phase::Prefilled);
                    entry.0 = Phase::Idle;
                }
                EngineEvent::Truncated { .. } => {
                    prop_assert!(phase != Phase::Idle);
                }
                EngineEvent::InstanceCrashed { .. }
                | EngineEvent::TurnRerouted { .. }
                | EngineEvent::DegradedRecompute { .. } => {
                    prop_assert!(false, "fault event in a fault-free run: {:?}", ev);
                }
                EngineEvent::SloConfig { .. }
                | EngineEvent::TurnShed { .. }
                | EngineEvent::OverloadLevelChanged { .. }
                | EngineEvent::ScaleUp { .. }
                | EngineEvent::ScaleDown { .. } => {
                    prop_assert!(false, "overload event in an SLO-free run: {:?}", ev);
                }
            }
        }
        for (sid, (phase, _)) in &state {
            prop_assert!(*phase == Phase::Idle, "session {} left mid-turn", sid);
        }
        // The stream agrees with the report's totals, in aggregate and
        // per instance.
        let retirements = log
            .events
            .iter()
            .filter(|(_, e)| matches!(e, EngineEvent::Retired { .. }))
            .count() as u64;
        prop_assert_eq!(retirements, report.aggregate.turns_measured.get());
        for inst in &report.instances {
            let mine = log
                .events
                .iter()
                .filter(|(i, e)| *i == inst.instance && matches!(e, EngineEvent::Retired { .. }))
                .count() as u64;
            prop_assert_eq!(mine, inst.turns_done);
        }
    }
}
