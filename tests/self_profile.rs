//! Self-profiling is strictly additive: a run executed with the
//! host-time profiler enabled must produce a byte-identical `RunReport`
//! to an unprofiled run of the same config.
//!
//! This is the two-clock counterpart of `telemetry_observers.rs`: that
//! suite pins that *virtual-time* observation is free; this one pins
//! that the *host-time* plane (scoped timers on the cluster, store and
//! telemetry hot paths, the heartbeat, RSS sampling) reads only wall
//! clocks and thread-local accumulators — never simulation state — so
//! enabling it cannot perturb a single simulated outcome.

use cachedattention::engine::{run_cluster, ClusterConfig, EngineConfig, Medium, Mode, RouterKind};
use cachedattention::models::ModelSpec;
use cachedattention::sim::{profiler, ProfilerConfig};
use cachedattention::workload::{Generator, ShareGptProfile, Trace};
use std::sync::Mutex;

/// The profiler's enable flag is process-global; tests that toggle it
/// must not interleave.
static PROFILER_LOCK: Mutex<()> = Mutex::new(());

const MODES: [Mode; 3] = [
    Mode::CachedAttention,
    Mode::Recompute,
    Mode::CoupledOverflow,
];

const MEDIUMS: [Medium; 3] = [Medium::DramDisk, Medium::HbmDram, Medium::HbmOnly];

/// The same pressured configuration the golden fixtures use.
fn pressured(mode: Mode, medium: Medium) -> EngineConfig {
    let mut cfg = EngineConfig::paper(mode, ModelSpec::llama2_13b());
    cfg.medium = medium;
    cfg.store.set_dram_bytes(8_000_000_000);
    cfg.store.set_disk_bytes(40_000_000_000);
    cfg
}

/// All 13 golden scenarios from `golden_report.rs`.
fn scenarios() -> Vec<(String, EngineConfig)> {
    let mut out = Vec::new();
    for mode in MODES {
        for medium in MEDIUMS {
            let name = format!("{}_{:?}", mode.label().to_lowercase(), medium);
            out.push((name, pressured(mode, medium)));
        }
    }
    let mut chunked = pressured(Mode::CachedAttention, Medium::DramDisk);
    chunked.chunked_prefill_tokens = Some(256);
    out.push(("ca_chunked".into(), chunked));
    let mut int4 = pressured(Mode::CachedAttention, Medium::DramDisk);
    int4.kv_compression = 0.25;
    out.push(("ca_int4".into(), int4));
    let mut no_pl = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_pl.preload = false;
    out.push(("ca_no_preload".into(), no_pl));
    let mut no_as = pressured(Mode::CachedAttention, Medium::DramDisk);
    no_as.async_save = false;
    out.push(("ca_no_async_save".into(), no_as));
    out
}

fn golden_trace() -> Trace {
    Generator::new(ShareGptProfile::default(), 7).trace(20)
}

#[test]
fn profiled_single_engine_reports_are_byte_identical() {
    let _guard = PROFILER_LOCK.lock().unwrap();
    for (name, cfg) in scenarios() {
        let plain = cachedattention::engine::run_trace(cfg.clone(), golden_trace());
        let expect = serde_json::to_string_pretty(&plain).unwrap();

        profiler::begin(ProfilerConfig::default());
        let profiled = cachedattention::engine::run_trace(cfg, golden_trace());
        let profile = profiler::finish();

        assert_eq!(
            expect,
            serde_json::to_string_pretty(&profiled).unwrap(),
            "scenario `{name}`: self-profiling changed the report"
        );
        assert!(
            profile.events > 0,
            "scenario `{name}`: the profiler saw no events"
        );
    }
}

#[test]
fn profiled_cluster_reports_are_byte_identical() {
    let _guard = PROFILER_LOCK.lock().unwrap();
    let engine = pressured(Mode::CachedAttention, Medium::DramDisk);
    let cfg = ClusterConfig::new(engine, 3, RouterKind::SessionAffinity);
    let trace = Generator::new(ShareGptProfile::default(), 11).trace(40);

    let plain = run_cluster(cfg.clone(), trace.clone());
    let expect = serde_json::to_string_pretty(&plain).unwrap();

    profiler::begin(ProfilerConfig::default());
    let profiled = run_cluster(cfg, trace);
    let profile = profiler::finish();

    assert_eq!(
        expect,
        serde_json::to_string_pretty(&profiled).unwrap(),
        "self-profiling changed the cluster report"
    );
    // The cluster path exercises the instrumented hot paths, so the
    // profile must actually contain them.
    let names: Vec<&str> = profile.scopes.iter().map(|s| s.name.as_str()).collect();
    for want in ["cluster.dispatch", "cluster.merged_view", "store.save"] {
        assert!(names.contains(&want), "scope `{want}` missing: {names:?}");
    }
}

#[test]
fn disabled_profiler_stays_silent_across_a_run() {
    let _guard = PROFILER_LOCK.lock().unwrap();
    let cfg = pressured(Mode::CachedAttention, Medium::DramDisk);
    // No begin(): the scope! macros must not record anything.
    let _report = cachedattention::engine::run_trace(cfg, golden_trace());
    profiler::begin(ProfilerConfig::default());
    let profile = profiler::finish();
    assert_eq!(profile.events, 0);
    assert!(profile.scopes.is_empty());
}
